"""Forwarding engine: queueing, dedup, loop detection, retransmission policy.

Receiver-side behaviour (``on_frame_received``) implements the causal chains
the paper's Table I describes:

* a frame whose path already contains this node signals a **routing loop**
  (``loop_counter``), but the frame is still forwarded until its THL
  expires — which is exactly why loops inflate ``Transmit_counter`` and
  ``Duplicate_counter`` together;
* an exact retransmission (same origin/seqno/THL) is a **link-layer
  duplicate** (``duplicate_counter``): it is ACKed but not re-enqueued;
* a full queue causes an **overflow drop** (``overflow_drop_counter``) and
  *no ACK* — so the sender's ``NOACK_retransmit_counter`` rises, matching
  the paper's observation that NOACK retransmits can mean either bad links
  or receiver overflow.

Sender-side policy (max 30 retransmissions, then drop) lives in the node's
transmit loop; this module supplies the bookkeeping primitives.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.metrics.packets import ReportPacket
from repro.simnet.counters import CounterSet
from repro.simnet.queuebuf import PacketQueue

MAX_RETRANSMISSIONS = 30
"""Per the paper: a packet is dropped after 30 failed transmissions."""

INITIAL_THL = 32
"""Time-has-lived budget; looped frames die when it reaches zero."""

DEDUP_CACHE_SIZE = 256
"""Recently-seen (origin, seqno) entries kept per node."""


class TxResult(enum.Enum):
    """Outcome of one unicast transmission attempt (ground truth).

    The sender can only distinguish ACKED from not-ACKED; the other values
    record *why* no ACK arrived, for ground-truth analysis.
    """

    ACKED = "acked"
    NOACK_LOST = "noack_lost"  # data frame not decoded at receiver
    NOACK_OVERFLOW = "noack_overflow"  # receiver queue full, no ACK sent
    NOACK_ACK_LOST = "noack_ack_lost"  # accepted, but the ACK was lost
    CHANNEL_FAIL = "channel_fail"  # CSMA never acquired the channel


@dataclass
class DataFrame:
    """A data packet travelling the collection tree.

    Attributes:
        origin: Node that generated the report.
        seqno: Origin-scoped sequence number.
        report: The C1/C2/C3 report packet being carried.
        path: Node ids that have held this frame, origin first.
        thl: Remaining time-has-lived (hops).
        created_at: Simulation time of generation.
    """

    origin: int
    seqno: int
    report: ReportPacket
    path: Tuple[int, ...]
    thl: int
    created_at: float

    def received_copy(self, receiver_id: int) -> "DataFrame":
        """The frame as stored by a node that accepted it (path grows,
        THL shrinks)."""
        return DataFrame(
            origin=self.origin,
            seqno=self.seqno,
            report=self.report,
            path=self.path + (receiver_id,),
            thl=self.thl - 1,
            created_at=self.created_at,
        )


@dataclass
class ReceiveVerdict:
    """What the receiver decided about an incoming frame."""

    send_ack: bool
    accepted: bool
    was_duplicate: bool = False
    loop_detected: bool = False
    delivered_at_sink: bool = False


class ForwardingEngine:
    """Per-node forwarding state."""

    def __init__(
        self,
        node_id: int,
        counters: CounterSet,
        is_sink: bool = False,
        queue_capacity: int = 12,
    ):
        self.node_id = node_id
        self.counters = counters
        self.is_sink = is_sink
        self.queue: PacketQueue[DataFrame] = PacketQueue(queue_capacity)
        # (origin, seqno) -> set of THLs seen; OrderedDict for LRU eviction.
        self._seen: "OrderedDict[Tuple[int, int], Set[int]]" = OrderedDict()
        self._next_seqno = 0
        #: Number of retransmissions already spent on the current head frame.
        self.head_retx = 0

    # ------------------------------------------------------------------
    # origination
    # ------------------------------------------------------------------

    def submit_self_report(self, report: ReportPacket, now: float) -> Optional[DataFrame]:
        """Queue a self-generated report.

        Returns the created frame, or ``None`` if the queue overflowed
        (which still counts as an overflow drop, per Table I).
        """
        frame = DataFrame(
            origin=self.node_id,
            seqno=self._next_seqno,
            report=report,
            path=(self.node_id,),
            thl=INITIAL_THL,
            created_at=now,
        )
        self._next_seqno += 1
        self.counters.self_transmit_counter += 1
        if not self.queue.push(frame):
            self.counters.overflow_drop_counter += 1
            return None
        return frame

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------

    def _remember(self, key: Tuple[int, int], thl: int) -> None:
        thls = self._seen.get(key)
        if thls is None:
            if len(self._seen) >= DEDUP_CACHE_SIZE:
                self._seen.popitem(last=False)
            thls = set()
            self._seen[key] = thls
        else:
            self._seen.move_to_end(key)
        thls.add(thl)

    def on_frame_received(self, frame: DataFrame) -> ReceiveVerdict:
        """Process an incoming, successfully-decoded data frame."""
        loop_detected = self.node_id in frame.path
        if loop_detected:
            self.counters.loop_counter += 1

        key = (frame.origin, frame.seqno)
        thls = self._seen.get(key)
        exact_duplicate = thls is not None and frame.thl in thls
        looped_duplicate = thls is not None and frame.thl not in thls

        if exact_duplicate:
            # Link-layer retransmission of something already accepted:
            # ACK it again, do not re-enqueue.
            self.counters.duplicate_counter += 1
            return ReceiveVerdict(
                send_ack=True,
                accepted=False,
                was_duplicate=True,
                loop_detected=loop_detected,
            )

        if self.is_sink:
            # The sink consumes frames instead of forwarding them.
            if looped_duplicate:
                self.counters.duplicate_counter += 1
                self._remember(key, frame.thl)
                return ReceiveVerdict(
                    send_ack=True,
                    accepted=False,
                    was_duplicate=True,
                    loop_detected=loop_detected,
                )
            self._remember(key, frame.thl)
            self.counters.receive_counter += 1
            return ReceiveVerdict(
                send_ack=True,
                accepted=True,
                loop_detected=loop_detected,
                delivered_at_sink=True,
            )

        if looped_duplicate:
            # Same packet on a second pass (routing loop): per CTP, it is
            # still forwarded (THL will eventually kill it), and it counts
            # as a duplicate in the metric layer.
            self.counters.duplicate_counter += 1

        if frame.thl <= 0:
            # THL expired: ACK (the link worked) but silently discard.
            self._remember(key, frame.thl)
            return ReceiveVerdict(
                send_ack=True, accepted=False, loop_detected=loop_detected,
                was_duplicate=looped_duplicate,
            )

        if self.queue.is_full():
            self.counters.overflow_drop_counter += 1
            return ReceiveVerdict(
                send_ack=False, accepted=False, loop_detected=loop_detected,
                was_duplicate=looped_duplicate,
            )

        self._remember(key, frame.thl)
        stored = frame.received_copy(self.node_id)
        self.queue.push(stored)
        self.counters.receive_counter += 1
        return ReceiveVerdict(
            send_ack=True,
            accepted=True,
            was_duplicate=looped_duplicate,
            loop_detected=loop_detected,
        )

    # ------------------------------------------------------------------
    # sender-side bookkeeping
    # ------------------------------------------------------------------

    def head(self) -> Optional[DataFrame]:
        """The frame currently first in line, if any."""
        return self.queue.peek()

    def complete_head(self) -> DataFrame:
        """Pop the head after a successful (ACKed) transmission."""
        self.head_retx = 0
        return self.queue.pop()

    def retry_head(self) -> bool:
        """Record a failed attempt on the head frame.

        Returns:
            True if the frame should be retried, False if it exhausted its
            30 retransmissions and was dropped (``drop_packet_counter``).
        """
        self.head_retx += 1
        if self.head_retx > MAX_RETRANSMISSIONS:
            self.queue.pop()
            self.head_retx = 0
            self.counters.drop_packet_counter += 1
            return False
        return True

    def drop_expired_head(self) -> None:
        """Silently drop a head frame whose THL is exhausted."""
        self.queue.pop()
        self.head_retx = 0

    def clear(self) -> None:
        """Forget queue and dedup state (node reboot)."""
        self.queue.clear()
        self._seen.clear()
        self.head_retx = 0
        # seqno deliberately NOT reset: on real motes it lives in the
        # packet layer and restarting from 0 would alias old cache entries
        # at receivers.  (CTP uses random initial seqno after reboot; we
        # just keep counting.)
