"""CTP-like collection tree protocol.

Four pieces, mirroring TinyOS's CTP decomposition:

* :mod:`repro.simnet.ctp.etx` — link estimator (beacon- and data-driven ETX),
* :mod:`repro.simnet.ctp.beacons` — trickle-style adaptive beacon timer,
* :mod:`repro.simnet.ctp.routing` — parent selection and path-ETX,
* :mod:`repro.simnet.ctp.forwarding` — queueing, retransmission, duplicate
  suppression and loop detection.

The counters these modules maintain are exactly the C3 metrics the paper's
tool consumes, and each is incremented for the causal reason Table I lists.
"""

from repro.simnet.ctp.etx import LinkEstimator, NeighborEntry
from repro.simnet.ctp.beacons import TrickleTimer
from repro.simnet.ctp.routing import RoutingEngine, Beacon
from repro.simnet.ctp.forwarding import ForwardingEngine, DataFrame, TxResult

__all__ = [
    "LinkEstimator",
    "NeighborEntry",
    "TrickleTimer",
    "RoutingEngine",
    "Beacon",
    "ForwardingEngine",
    "DataFrame",
    "TxResult",
]
