"""Trickle-style adaptive beacon timer.

CTP beacons follow the Trickle discipline: the interval doubles while the
topology is quiet (saving energy and airtime) and snaps back to the minimum
whenever something interesting happens — a parent change, a detected loop,
or a brand-new neighbor.  The timer here reproduces that behaviour; the
node layer asks :meth:`next_delay` after each beacon and calls
:meth:`reset` on topology events.
"""

from __future__ import annotations

import numpy as np


class TrickleTimer:
    """Doubling beacon interval with jitter.

    Args:
        min_interval_s: Interval after a reset.
        max_interval_s: Interval ceiling.
        rng: Source of jitter (+-25 % around the nominal interval).
    """

    def __init__(
        self,
        min_interval_s: float = 30.0,
        max_interval_s: float = 480.0,
        rng: "np.random.Generator" = None,
    ):
        if min_interval_s <= 0 or max_interval_s < min_interval_s:
            raise ValueError("need 0 < min_interval_s <= max_interval_s")
        self.min_interval_s = min_interval_s
        self.max_interval_s = max_interval_s
        self._rng = rng
        self._interval = min_interval_s

    def next_delay(self) -> float:
        """Delay until the next beacon; doubles the interval afterwards."""
        interval = self._interval
        self._interval = min(self.max_interval_s, self._interval * 2.0)
        if self._rng is not None:
            return interval * float(self._rng.uniform(0.75, 1.25))
        return interval

    def reset(self) -> None:
        """Snap back to the minimum interval (topology changed)."""
        self._interval = self.min_interval_s

    @property
    def current_interval(self) -> float:
        """The interval the *next* call to :meth:`next_delay` will use."""
        return self._interval
