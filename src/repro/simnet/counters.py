"""The C3 protocol counters a node maintains.

Plain attributes (not a dict) for speed — these are bumped millions of
times in a long simulation.  All counters are cumulative and reset to zero
on node reboot, which is precisely what produces the large negative deltas
the paper's reboot signature (Ψ4-style) keys on.
"""

from __future__ import annotations

from typing import Dict


class CounterSet:
    """Cumulative protocol counters for one node."""

    __slots__ = (
        "parent_change_counter",
        "no_parent_counter",
        "transmit_counter",
        "self_transmit_counter",
        "receive_counter",
        "overflow_drop_counter",
        "noack_retransmit_counter",
        "drop_packet_counter",
        "duplicate_counter",
        "loop_counter",
        "mac_backoff_counter",
        "beacon_counter",
        "ack_counter",
        "retransmit_counter",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        """Zero every counter (node reboot)."""
        for name in self.__slots__:
            setattr(self, name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """All counters as a name -> value mapping."""
        return {name: getattr(self, name) for name in self.__slots__}
