"""Physical-layer model: path loss, RSSI and PRR-vs-SNR.

The model is the standard log-distance path-loss model with log-normal
shadowing, and a logistic packet-reception-rate curve against SNR — the
usual abstraction for CC2420-class radios.  Absolute constants are tuned so
that links inside ~0.6 x the communication radius are near-perfect and
links near the edge are lossy, reproducing the gray-region behaviour that
drives ETX churn in real deployments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class RadioParams:
    """Radio and propagation constants.

    Attributes:
        tx_power_dbm: Transmit power (CC2420 power level 2 is about -25 dBm
            on the testbed; CitySee ran higher power, about 0 dBm).
        path_loss_d0: Reference distance for the path-loss model (m).
        path_loss_pl0: Path loss at the reference distance (dB).
        path_loss_exponent: Log-distance exponent (2 free space .. 4 urban).
        shadowing_sigma_db: Std-dev of static per-link log-normal shadowing.
        fading_sigma_db: Std-dev of the temporal fading process.
        fading_tau_s: Correlation time of the temporal fading process (s).
        snr_half_db: SNR at which PRR = 50 %.
        snr_slope_db: Logistic slope of the PRR curve.
    """

    tx_power_dbm: float = 0.0
    path_loss_d0: float = 1.0
    path_loss_pl0: float = 40.0
    path_loss_exponent: float = 3.0
    shadowing_sigma_db: float = 3.0
    fading_sigma_db: float = 1.5
    fading_tau_s: float = 600.0
    snr_half_db: float = 5.0
    snr_slope_db: float = 2.0


def path_loss_db(distance: float, params: RadioParams) -> float:
    """Deterministic log-distance path loss in dB."""
    d = max(distance, params.path_loss_d0)
    return params.path_loss_pl0 + 10.0 * params.path_loss_exponent * math.log10(
        d / params.path_loss_d0
    )


def prr_from_snr(snr_db: float, params: RadioParams) -> float:
    """Packet reception rate for a given SNR (logistic curve in [0, 1])."""
    x = (snr_db - params.snr_half_db) / params.snr_slope_db
    # clamp to avoid overflow in exp for extreme SNRs
    if x > 30.0:
        return 1.0
    if x < -30.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))
