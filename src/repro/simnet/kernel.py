"""Deterministic discrete-event simulation kernel.

A minimal but complete event scheduler: events are ``(time, sequence,
callback)`` triples kept in a binary heap.  The sequence number breaks ties
deterministically, so two runs with the same seed replay the exact same
event order.  Cancellation is lazy (a cancelled event stays in the heap but
is skipped when popped), which keeps both operations O(log n).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be used to
    cancel the callback before it fires.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True
        self.callback = None  # release references early

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, seq={self.seq}, {state})"


class Simulator:
    """Discrete-event simulator with a float-seconds clock.

    The kernel knows nothing about networks; it only orders callbacks.
    Components schedule work with :meth:`schedule` (relative delay) or
    :meth:`schedule_at` (absolute time) and read the clock with
    :meth:`now`.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False

    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks that have fired so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are clamped to zero (the event fires "immediately",
        after already-queued events at the current time).
        """
        if delay < 0:
            delay = 0.0
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule event in the past: {time} < {self._now}"
            )
        event = Event(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue."""
        return sum(1 for e in self._queue if not e.cancelled)

    def run_until(self, end_time: float) -> None:
        """Run events in order until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are executed.  The clock is
        left at ``end_time`` afterwards, even if the queue drained early.
        """
        if self._running:
            raise RuntimeError("simulator is already running (reentrant run)")
        self._running = True
        try:
            while self._queue and self._queue[0].time <= end_time:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                callback = event.callback
                event.callback = None
                self._events_processed += 1
                callback()
            self._now = max(self._now, end_time)
        finally:
            self._running = False

    def run(self, duration: float) -> None:
        """Run for ``duration`` seconds from the current clock."""
        self.run_until(self._now + duration)
