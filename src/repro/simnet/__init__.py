"""Discrete-event wireless sensor network simulator.

The simulator is the substrate that stands in for the paper's CitySee
deployment and TelosB testbed.  It produces the same observable artifact the
paper's tool consumes: a stream of C1/C2/C3 report packets carrying 43
metrics, collected at a single sink over a CTP-like collection tree.
"""

from repro.simnet.kernel import Simulator, Event
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.topology import Topology, grid_topology, random_geometric_topology
from repro.simnet.faults import (
    FaultInjector,
    NodeFailure,
    NodeReboot,
    LinkDegradation,
    Interference,
    ForcedLoop,
    TrafficBurst,
    BatteryDrain,
)

__all__ = [
    "Simulator",
    "Event",
    "Network",
    "NetworkConfig",
    "Topology",
    "grid_topology",
    "random_geometric_topology",
    "FaultInjector",
    "NodeFailure",
    "NodeReboot",
    "LinkDegradation",
    "Interference",
    "ForcedLoop",
    "TrafficBurst",
    "BatteryDrain",
]
