"""Sensor suite: samples the environment fields and the battery voltage.

These readings populate the C1 report packet.  Each node adds a small fixed
calibration offset per sensor, as real TelosB boards do, so per-node
baselines differ while deltas stay environment-driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.simnet.environment import Environment
from repro.simnet.hardware import Hardware


@dataclass
class SensorReadings:
    """One C1-packet worth of sensor values."""

    temperature: float
    humidity: float
    light: float
    co2: float
    voltage: float


class SensorSuite:
    """Per-node sensors with fixed calibration offsets."""

    def __init__(
        self,
        environment: Environment,
        hardware: Hardware,
        position: Tuple[float, float],
        rng: np.random.Generator,
    ):
        self._environment = environment
        self._hardware = hardware
        self._position = position
        self._offsets = {
            "temperature": float(rng.normal(0.0, 0.3)),
            "humidity": float(rng.normal(0.0, 1.5)),
            "light": float(rng.normal(0.0, 10.0)),
            "co2": float(rng.normal(0.0, 8.0)),
        }

    def read(self, time: float) -> SensorReadings:
        """Sample all sensors at simulation time ``time``."""
        env = self._environment
        pos = self._position
        return SensorReadings(
            temperature=env.temperature(time, pos) + self._offsets["temperature"],
            humidity=env.humidity(time, pos) + self._offsets["humidity"],
            light=max(0.0, env.light(time, pos) + self._offsets["light"]),
            co2=env.co2(time, pos) + self._offsets["co2"],
            voltage=self._hardware.battery.voltage(),
        )

    def ambient_temperature(self, time: float) -> float:
        """Temperature without calibration offset (drives clock skew)."""
        return self._environment.temperature(time, self._position)

    def set_position(self, position: Tuple[float, float]) -> None:
        """Follow a node relocation: future readings sample the new spot."""
        self._position = position
