"""Fault injection: the hazard events of Table I, made schedulable.

Each fault is a declarative record; :class:`FaultInjector` installs a list
of them into a network by scheduling the appropriate state changes on the
simulation clock and appending ground-truth events the evaluation harness
can score against.

Supported faults and the metric signatures they produce:

=================  =========================================================
Fault              Expected signature (what VN2 should learn)
=================  =========================================================
NodeFailure        Node goes silent; children see NOACK retransmits, parent
                   changes, possibly no-parent periods.
NodeReboot         Counters reset to ~0 (large negative deltas), voltage
                   jumps to full, neighbors see a "new" node join.
LinkDegradation    RSSI/ETX drift on affected links; retransmits; parent
                   churn.
Interference       Noise floor rises: MAC backoffs, frame loss, contention.
ForcedLoop         Two nodes adopt each other: transmit/duplicate/overflow
                   counters inflate, loop_counter fires.
TrafficBurst       Extra self-traffic: queue pressure, overflow drops,
                   contention around the hot spot.
BatteryDrain       Accelerated energy use: voltage sags, radio-on time
                   grows; eventual node death.
=================  =========================================================

The chaos engine (:mod:`repro.chaos`) layers seven more field-realistic
primitives on the same duck-typed ``install(network)`` protocol:

=======================  ===================================================
Fault                    Expected signature
=======================  ===================================================
CorrelatedInterference   Several noise regions flaring in lock-step bursts:
                         synchronized contention/noise across distant disks.
BatteryBrownout          Voltage sag -> recover -> sag under load phases;
                         low-voltage readings without (necessarily) death.
ClockSkew                Extra crystal drift: reports arrive too fast/slow,
                         inter-report spacing shifts.
FirmwareSkew             Nodes report only a metric subset; the sink fills
                         the rest, so onset shows one neighbor-table jump.
DutyCycle                Periodic sleep/wake with state kept: report gaps,
                         parent churn on wake, but no counter cliffs.
NodeMove                 Relocation: RSSI/ETX discontinuity, neighbor-set
                         turnover, parent changes.
GatewayFailure           A gateway sink dies (and maybe recovers): its
                         subtree sees NOACKs, churns to another gateway.
=======================  ===================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simnet.environment import NoiseRegion
from repro.simnet.network import Network


@dataclass(frozen=True)
class NodeFailure:
    """Silence a node at ``at`` (until a later :class:`NodeReboot`)."""

    node_id: int
    at: float

    def install(self, network: Network) -> None:
        node = network.nodes[self.node_id]
        network.sim.schedule_at(self.at, node.die)
        network.record_ground_truth("node_failure", (self.node_id,), self.at, self.at)


@dataclass(frozen=True)
class NodeReboot:
    """Reboot (or resurrect) a node at ``at``; counters reset to zero."""

    node_id: int
    at: float
    fresh_battery: bool = True

    def install(self, network: Network) -> None:
        node = network.nodes[self.node_id]
        network.sim.schedule_at(
            self.at, lambda: node.reboot(fresh_battery=self.fresh_battery)
        )
        network.record_ground_truth("node_reboot", (self.node_id,), self.at, self.at)


@dataclass(frozen=True)
class LinkDegradation:
    """Attenuate all links touching a disk during [start, end)."""

    center: Tuple[float, float]
    radius: float
    start: float
    end: float
    extra_db: float = 10.0

    def install(self, network: Network) -> None:
        network.medium.degrade_region(
            self.center, self.radius, self.start, self.end, self.extra_db
        )
        affected = tuple(
            nid
            for nid, pos in network.topology.positions.items()
            if (pos[0] - self.center[0]) ** 2 + (pos[1] - self.center[1]) ** 2
            <= self.radius**2
        )
        network.record_ground_truth(
            "link_degradation", affected, self.start, self.end
        )


@dataclass(frozen=True)
class Interference:
    """Raise the RF noise floor in a disk during [start, end)."""

    center: Tuple[float, float]
    radius: float
    start: float
    end: float
    delta_db: float = 15.0

    def install(self, network: Network) -> None:
        network.environment.add_noise_region(
            NoiseRegion(self.center, self.radius, self.start, self.end, self.delta_db)
        )
        affected = tuple(
            nid
            for nid, pos in network.topology.positions.items()
            if (pos[0] - self.center[0]) ** 2 + (pos[1] - self.center[1]) ** 2
            <= self.radius**2
        )
        network.record_ground_truth("interference", affected, self.start, self.end)


@dataclass(frozen=True)
class ForcedLoop:
    """Pin two nodes to each other as parents during [start, end)."""

    node_a: int
    node_b: int
    start: float
    end: float

    def install(self, network: Network) -> None:
        node_a = network.nodes[self.node_a]
        node_b = network.nodes[self.node_b]

        def begin() -> None:
            node_a.routing.force_parent(self.node_b, until=self.end)
            node_b.routing.force_parent(self.node_a, until=self.end)

        network.sim.schedule_at(self.start, begin)
        network.record_ground_truth(
            "routing_loop", (self.node_a, self.node_b), self.start, self.end
        )


@dataclass(frozen=True)
class TrafficBurst:
    """Extra self-generated packets from some nodes during [start, end).

    Each affected node injects an extra copy of its most recent C1 report
    every ``interval_s``, pressuring queues and the channel around it.
    """

    node_ids: Tuple[int, ...]
    start: float
    end: float
    interval_s: float = 5.0

    def install(self, network: Network) -> None:
        for node_id in self.node_ids:
            node = network.nodes[node_id]

            def tick(node=node) -> None:
                now = network.sim.now()
                if now >= self.end or not node.alive:
                    return
                snapshot = node.build_snapshot(now)
                from repro.metrics.packets import snapshot_to_packets

                c1, _c2, _c3 = snapshot_to_packets(
                    node.node_id, node.epoch, now, snapshot,
                    metrics=node.report_metrics,
                )
                network.stats.packets_generated += 1
                node.forwarding.submit_self_report(c1, now)
                node.schedule_service()
                network.sim.schedule(self.interval_s, tick)

            network.sim.schedule_at(self.start, tick)
        network.record_ground_truth(
            "traffic_burst", tuple(self.node_ids), self.start, self.end
        )


@dataclass(frozen=True)
class BatteryDrain:
    """Multiply a node's energy consumption during [start, end)."""

    node_id: int
    start: float
    end: float
    multiplier: float = 50.0

    def install(self, network: Network) -> None:
        node = network.nodes[self.node_id]

        def begin() -> None:
            node.hardware.battery.drain_multiplier = self.multiplier

        def finish() -> None:
            node.hardware.battery.drain_multiplier = 1.0

        network.sim.schedule_at(self.start, begin)
        network.sim.schedule_at(self.end, finish)
        network.record_ground_truth(
            "battery_drain", (self.node_id,), self.start, self.end
        )


# ----------------------------------------------------------------------
# chaos-engine primitives (field-realistic hazards beyond Table I's mix)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CorrelatedInterference:
    """Noise regions around several centers flaring in synchronized bursts.

    One :class:`NoiseRegion` is created per (center, burst) pair, so
    spatially distant disks light up and die down *together* — the
    correlated-noise regime a single :class:`Interference` disk cannot
    express.  One ground-truth event per burst, covering the union of
    affected nodes.
    """

    centers: Tuple[Tuple[float, float], ...]
    radius: float
    bursts: Tuple[Tuple[float, float], ...]  # (start, end) windows
    delta_db: float = 15.0

    def install(self, network: Network) -> None:
        affected = tuple(
            sorted(
                nid
                for nid, pos in network.topology.positions.items()
                if any(
                    (pos[0] - cx) ** 2 + (pos[1] - cy) ** 2 <= self.radius**2
                    for cx, cy in self.centers
                )
            )
        )
        for start, end in self.bursts:
            for center in self.centers:
                network.environment.add_noise_region(
                    NoiseRegion(tuple(center), self.radius, start, end, self.delta_db)
                )
            network.record_ground_truth(
                "correlated_interference", affected, start, end
            )


@dataclass(frozen=True)
class BatteryBrownout:
    """Voltage sag -> recover -> sag phases on one node during [start, end).

    The span is split into ``2 * sags - 1`` equal segments alternating
    *sag* (supply droop of ``sag_v`` volts plus ``multiplier``-accelerated
    drain) and *recover* (normal).  The droop is reversible and does not by
    itself kill the node (see :class:`repro.simnet.hardware.Battery`),
    though the accelerated drain still burns real charge.
    """

    node_id: int
    start: float
    end: float
    sag_v: float = 0.12
    multiplier: float = 25.0
    sags: int = 2

    def install(self, network: Network) -> None:
        if self.sags < 1:
            raise ValueError("BatteryBrownout needs at least one sag phase")
        node = network.nodes[self.node_id]
        battery = node.hardware.battery

        def sag() -> None:
            battery.brownout_v = self.sag_v
            battery.drain_multiplier = self.multiplier

        def recover() -> None:
            battery.brownout_v = 0.0
            battery.drain_multiplier = 1.0

        n_segments = 2 * self.sags - 1
        seg = (self.end - self.start) / n_segments
        for k in range(n_segments):
            at = self.start + k * seg
            network.sim.schedule_at(at, sag if k % 2 == 0 else recover)
        network.sim.schedule_at(self.end, recover)
        network.record_ground_truth(
            "battery_brownout", (self.node_id,), self.start, self.end
        )


@dataclass(frozen=True)
class ClockSkew:
    """Extra crystal drift on one node during [start, end).

    ``extra_ppm`` adds to the temperature model's drift, so the node's
    report timer genuinely runs fast (negative ppm) or slow (positive).
    The offset lives on the node's own :class:`~repro.simnet.hardware.Hardware`
    — the shared :class:`~repro.simnet.hardware.ClockParams` is untouched.
    """

    node_id: int
    start: float
    end: float
    #: Physically absurd but diagnostically honest: Table I's "too
    #: fast / too slow" needs the reporting cadence (and with it every
    #: per-epoch counter delta) visibly shifted within a scaled run.
    extra_ppm: float = 200000.0  # +20% period (reports arrive slow)

    def install(self, network: Network) -> None:
        hardware = network.nodes[self.node_id].hardware

        def begin() -> None:
            hardware.skew_extra_ppm = self.extra_ppm

        def finish() -> None:
            hardware.skew_extra_ppm = 0.0

        network.sim.schedule_at(self.start, begin)
        network.sim.schedule_at(self.end, finish)
        network.record_ground_truth(
            "clock_skew", (self.node_id,), self.start, self.end
        )


@dataclass(frozen=True)
class FirmwareSkew:
    """Nodes downgrade to firmware reporting only a metric subset.

    From ``start`` to ``end`` the listed nodes pack only ``metrics`` into
    their report packets (all three packet classes are still emitted); the
    sink fills the gaps with
    :data:`repro.metrics.packets.MISSING_METRIC_FILL`, so the onset shows
    as a single neighbor-table jump, then the filled slots hold constant.
    """

    node_ids: Tuple[int, ...]
    metrics: Tuple[str, ...]
    start: float
    end: float

    def install(self, network: Network) -> None:
        from repro.metrics.catalog import METRIC_INDEX

        unknown = set(self.metrics) - set(METRIC_INDEX)
        if unknown:
            raise ValueError(f"FirmwareSkew names unknown metrics {sorted(unknown)}")
        subset = tuple(self.metrics)
        for node_id in self.node_ids:
            node = network.nodes[node_id]

            def downgrade(node=node) -> None:
                node.report_metrics = subset

            def upgrade(node=node) -> None:
                node.report_metrics = None

            network.sim.schedule_at(self.start, downgrade)
            network.sim.schedule_at(self.end, upgrade)
        network.record_ground_truth(
            "firmware_skew", tuple(self.node_ids), self.start, self.end
        )


@dataclass(frozen=True)
class DutyCycle:
    """Periodic sleep/wake on one node during [start, end).

    Each ``period_s`` cycle the node is awake for ``on_fraction`` of the
    period and asleep (radio off, timers inert, *state kept*) for the
    rest.  The node is always woken at ``end``.  A node that died while
    asleep (e.g. a concurrent failure fault) stays down —
    :meth:`~repro.simnet.node.Node.wake` only reverses sleep.
    """

    node_id: int
    start: float
    end: float
    period_s: float = 1800.0
    on_fraction: float = 0.5

    def install(self, network: Network) -> None:
        if not 0.0 < self.on_fraction < 1.0:
            raise ValueError("on_fraction must be in (0, 1)")
        if self.period_s <= 0.0:
            raise ValueError("period_s must be positive")
        node = network.nodes[self.node_id]
        off_s = self.period_s * (1.0 - self.on_fraction)
        t = self.start
        while t < self.end:
            network.sim.schedule_at(t, node.sleep)
            network.sim.schedule_at(min(t + off_s, self.end), node.wake)
            t += self.period_s
        network.record_ground_truth(
            "duty_cycle", (self.node_id,), self.start, self.end
        )


@dataclass(frozen=True)
class NodeMove:
    """Relocate a node at ``at`` (mobile deployments).

    Links touching the node are rebuilt with fresh distances/shadowing and
    its sensors start sampling the new spot — neighbors see it "reappear"
    somewhere else.
    """

    node_id: int
    at: float
    to: Tuple[float, float]

    def install(self, network: Network) -> None:
        network.sim.schedule_at(
            self.at, lambda: network.move_node(self.node_id, self.to)
        )
        network.record_ground_truth("node_move", (self.node_id,), self.at, self.at)


@dataclass(frozen=True)
class GatewayFailure:
    """A gateway sink dies at ``at`` (and optionally recovers).

    Requires the network to have been built with the node as a sink
    (``topology.sink_id`` or ``NetworkConfig.gateway_ids``).  Failover is
    emergent: the dead gateway stops acking, its subtree NOACK-churns to
    paths toward a surviving gateway.  The ground-truth node list covers
    the gateway *and its radio neighborhood* — the nodes whose metrics
    actually move.
    """

    gateway_id: int
    at: float
    recover_at: Optional[float] = None

    def install(self, network: Network) -> None:
        node = network.nodes[self.gateway_id]
        if not node.is_sink:
            raise ValueError(
                f"node {self.gateway_id} is not a sink/gateway of this network"
            )
        network.sim.schedule_at(self.at, node.die)
        if self.recover_at is not None:
            if self.recover_at <= self.at:
                raise ValueError("recover_at must be after at")
            network.sim.schedule_at(self.recover_at, node.reboot)
        affected = (self.gateway_id, *sorted(network.medium.neighbors(self.gateway_id)))
        network.record_ground_truth(
            "gateway_failover",
            affected,
            self.at,
            self.recover_at if self.recover_at is not None else self.at,
        )


Fault = object  # any of the dataclasses above (duck-typed on .install)


class FaultConflictError(ValueError):
    """Two faults demand contradictory node state at the same instant."""


def _lifecycle_points(fault: Fault) -> List[Tuple[int, float, str]]:
    """(node_id, time, action) for each instantaneous lifecycle change."""
    if isinstance(fault, NodeFailure):
        return [(fault.node_id, fault.at, "die")]
    if isinstance(fault, NodeReboot):
        return [(fault.node_id, fault.at, "reboot")]
    if isinstance(fault, GatewayFailure):
        points = [(fault.gateway_id, fault.at, "die")]
        if fault.recover_at is not None:
            points.append((fault.gateway_id, fault.recover_at, "reboot"))
        return points
    return []


class FaultInjector:
    """Installs a declarative fault schedule into a network.

    Lifecycle faults (failure/reboot/gateway failure) targeting the *same
    node at the same instant* are rejected with
    :class:`FaultConflictError` at install time: the simulator's event
    queue breaks time ties by insertion order, so e.g. a ``NodeFailure``
    and a ``NodeReboot`` at the identical tick would silently resolve to
    whichever was listed last.  At distinct times ordering is well-defined
    and any combination is allowed.
    """

    def __init__(self, faults: Optional[Sequence[Fault]] = None):
        self.faults: List[Fault] = list(faults or [])

    def add(self, fault: Fault) -> "FaultInjector":
        """Append a fault; returns self for chaining."""
        self.faults.append(fault)
        return self

    def check_conflicts(self) -> None:
        """Raise :class:`FaultConflictError` on same-node same-tick clashes."""
        seen: Dict[Tuple[int, float], Tuple[str, Fault]] = {}
        for fault in self.faults:
            for node_id, at, action in _lifecycle_points(fault):
                key = (node_id, at)
                if key in seen:
                    other_action, other = seen[key]
                    raise FaultConflictError(
                        f"conflicting faults on node {node_id} at t={at:g}: "
                        f"{type(other).__name__} ({other_action}) vs "
                        f"{type(fault).__name__} ({action}); outcome would "
                        "depend on schedule insertion order"
                    )
                seen[key] = (action, fault)

    def install(self, network: Network) -> None:
        """Schedule every fault on the network's simulator.

        Raises:
            FaultConflictError: See :meth:`check_conflicts`.
        """
        self.check_conflicts()
        for fault in self.faults:
            fault.install(network)
