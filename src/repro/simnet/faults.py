"""Fault injection: the hazard events of Table I, made schedulable.

Each fault is a declarative record; :class:`FaultInjector` installs a list
of them into a network by scheduling the appropriate state changes on the
simulation clock and appending ground-truth events the evaluation harness
can score against.

Supported faults and the metric signatures they produce:

=================  =========================================================
Fault              Expected signature (what VN2 should learn)
=================  =========================================================
NodeFailure        Node goes silent; children see NOACK retransmits, parent
                   changes, possibly no-parent periods.
NodeReboot         Counters reset to ~0 (large negative deltas), voltage
                   jumps to full, neighbors see a "new" node join.
LinkDegradation    RSSI/ETX drift on affected links; retransmits; parent
                   churn.
Interference       Noise floor rises: MAC backoffs, frame loss, contention.
ForcedLoop         Two nodes adopt each other: transmit/duplicate/overflow
                   counters inflate, loop_counter fires.
TrafficBurst       Extra self-traffic: queue pressure, overflow drops,
                   contention around the hot spot.
BatteryDrain       Accelerated energy use: voltage sags, radio-on time
                   grows; eventual node death.
=================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.simnet.environment import NoiseRegion
from repro.simnet.network import Network


@dataclass(frozen=True)
class NodeFailure:
    """Silence a node at ``at`` (until a later :class:`NodeReboot`)."""

    node_id: int
    at: float

    def install(self, network: Network) -> None:
        node = network.nodes[self.node_id]
        network.sim.schedule_at(self.at, node.die)
        network.record_ground_truth("node_failure", (self.node_id,), self.at, self.at)


@dataclass(frozen=True)
class NodeReboot:
    """Reboot (or resurrect) a node at ``at``; counters reset to zero."""

    node_id: int
    at: float
    fresh_battery: bool = True

    def install(self, network: Network) -> None:
        node = network.nodes[self.node_id]
        network.sim.schedule_at(
            self.at, lambda: node.reboot(fresh_battery=self.fresh_battery)
        )
        network.record_ground_truth("node_reboot", (self.node_id,), self.at, self.at)


@dataclass(frozen=True)
class LinkDegradation:
    """Attenuate all links touching a disk during [start, end)."""

    center: Tuple[float, float]
    radius: float
    start: float
    end: float
    extra_db: float = 10.0

    def install(self, network: Network) -> None:
        network.medium.degrade_region(
            self.center, self.radius, self.start, self.end, self.extra_db
        )
        affected = tuple(
            nid
            for nid, pos in network.topology.positions.items()
            if (pos[0] - self.center[0]) ** 2 + (pos[1] - self.center[1]) ** 2
            <= self.radius**2
        )
        network.record_ground_truth(
            "link_degradation", affected, self.start, self.end
        )


@dataclass(frozen=True)
class Interference:
    """Raise the RF noise floor in a disk during [start, end)."""

    center: Tuple[float, float]
    radius: float
    start: float
    end: float
    delta_db: float = 15.0

    def install(self, network: Network) -> None:
        network.environment.add_noise_region(
            NoiseRegion(self.center, self.radius, self.start, self.end, self.delta_db)
        )
        affected = tuple(
            nid
            for nid, pos in network.topology.positions.items()
            if (pos[0] - self.center[0]) ** 2 + (pos[1] - self.center[1]) ** 2
            <= self.radius**2
        )
        network.record_ground_truth("interference", affected, self.start, self.end)


@dataclass(frozen=True)
class ForcedLoop:
    """Pin two nodes to each other as parents during [start, end)."""

    node_a: int
    node_b: int
    start: float
    end: float

    def install(self, network: Network) -> None:
        node_a = network.nodes[self.node_a]
        node_b = network.nodes[self.node_b]

        def begin() -> None:
            node_a.routing.force_parent(self.node_b, until=self.end)
            node_b.routing.force_parent(self.node_a, until=self.end)

        network.sim.schedule_at(self.start, begin)
        network.record_ground_truth(
            "routing_loop", (self.node_a, self.node_b), self.start, self.end
        )


@dataclass(frozen=True)
class TrafficBurst:
    """Extra self-generated packets from some nodes during [start, end).

    Each affected node injects an extra copy of its most recent C1 report
    every ``interval_s``, pressuring queues and the channel around it.
    """

    node_ids: Tuple[int, ...]
    start: float
    end: float
    interval_s: float = 5.0

    def install(self, network: Network) -> None:
        for node_id in self.node_ids:
            node = network.nodes[node_id]

            def tick(node=node) -> None:
                now = network.sim.now()
                if now >= self.end or not node.alive:
                    return
                snapshot = node.build_snapshot(now)
                from repro.metrics.packets import snapshot_to_packets

                c1, _c2, _c3 = snapshot_to_packets(
                    node.node_id, node.epoch, now, snapshot
                )
                network.stats.packets_generated += 1
                node.forwarding.submit_self_report(c1, now)
                node.schedule_service()
                network.sim.schedule(self.interval_s, tick)

            network.sim.schedule_at(self.start, tick)
        network.record_ground_truth(
            "traffic_burst", tuple(self.node_ids), self.start, self.end
        )


@dataclass(frozen=True)
class BatteryDrain:
    """Multiply a node's energy consumption during [start, end)."""

    node_id: int
    start: float
    end: float
    multiplier: float = 50.0

    def install(self, network: Network) -> None:
        node = network.nodes[self.node_id]

        def begin() -> None:
            node.hardware.battery.drain_multiplier = self.multiplier

        def finish() -> None:
            node.hardware.battery.drain_multiplier = 1.0

        network.sim.schedule_at(self.start, begin)
        network.sim.schedule_at(self.end, finish)
        network.record_ground_truth(
            "battery_drain", (self.node_id,), self.start, self.end
        )


Fault = object  # any of the dataclasses above (duck-typed on .install)


class FaultInjector:
    """Installs a declarative fault schedule into a network."""

    def __init__(self, faults: Optional[Sequence[Fault]] = None):
        self.faults: List[Fault] = list(faults or [])

    def add(self, fault: Fault) -> "FaultInjector":
        """Append a fault; returns self for chaining."""
        self.faults.append(fault)
        return self

    def install(self, network: Network) -> None:
        """Schedule every fault on the network's simulator."""
        for fault in self.faults:
            fault.install(network)
