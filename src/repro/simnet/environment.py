"""Environmental fields: temperature, humidity, light, CO2 and RF noise.

The environment is a set of space-time fields sampled by the sensor layer
and by the radio (noise floor).  Diurnal cycles drive temperature and light;
humidity is anti-correlated with temperature; CO2 follows traffic-like
morning/evening bumps (CitySee monitors urban CO2).  Interference events
registered by the fault injector raise the local RF noise floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

SECONDS_PER_DAY = 86400.0


@dataclass
class NoiseRegion:
    """A temporary RF interference region.

    Attributes:
        center: (x, y) center of the affected disk.
        radius: Radius in meters.
        start: Activation time (seconds).
        end: Deactivation time (seconds).
        delta_db: Noise-floor increase inside the disk (dB).
    """

    center: Tuple[float, float]
    radius: float
    start: float
    end: float
    delta_db: float

    def active_at(self, time: float, position: Tuple[float, float]) -> bool:
        if not (self.start <= time < self.end):
            return False
        dx = position[0] - self.center[0]
        dy = position[1] - self.center[1]
        return math.hypot(dx, dy) <= self.radius


class Environment:
    """Space-time environmental model.

    Args:
        rng: Random stream for small-scale fluctuation.
        base_temperature: Daily mean temperature (deg C).
        temp_amplitude: Diurnal swing amplitude (deg C).
        base_noise_floor: RF noise floor with no interference (dBm).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        base_temperature: float = 26.0,
        temp_amplitude: float = 6.0,
        base_noise_floor: float = -96.0,
        day_seconds: float = SECONDS_PER_DAY,
    ):
        self._rng = rng
        self.base_temperature = base_temperature
        self.temp_amplitude = temp_amplitude
        self.base_noise_floor = base_noise_floor
        self.day_seconds = float(day_seconds)
        self.noise_regions: List[NoiseRegion] = []

    # ------------------------------------------------------------------
    # sensing fields
    # ------------------------------------------------------------------

    def _phase(self, time: float) -> float:
        """Diurnal phase in radians; 0 at midnight, pi at noon."""
        return 2.0 * math.pi * (time % self.day_seconds) / self.day_seconds

    def temperature(self, time: float, position: Tuple[float, float]) -> float:
        """Air temperature (deg C): diurnal sinusoid + spatial gradient + jitter."""
        diurnal = -math.cos(self._phase(time)) * self.temp_amplitude
        spatial = 0.002 * position[0]  # mild west-east gradient
        jitter = float(self._rng.normal(0.0, 0.15))
        return self.base_temperature + diurnal + spatial + jitter

    def humidity(self, time: float, position: Tuple[float, float]) -> float:
        """Relative humidity (%): anti-correlated with temperature."""
        temp = self.temperature(time, position)
        humidity = 95.0 - 2.2 * (temp - self.base_temperature) - 0.3 * temp
        jitter = float(self._rng.normal(0.0, 0.8))
        return float(np.clip(humidity + jitter, 5.0, 100.0))

    def light(self, time: float, position: Tuple[float, float]) -> float:
        """Ambient light (normalised lux in [0, 1000]): zero at night."""
        sun = max(0.0, -math.cos(self._phase(time)))
        jitter = float(self._rng.normal(0.0, 5.0))
        return float(np.clip(1000.0 * sun + jitter, 0.0, 1200.0))

    def co2(self, time: float, position: Tuple[float, float]) -> float:
        """CO2 (ppm): baseline + traffic bumps at ~8h and ~18h."""
        hours = 24.0 * (time % self.day_seconds) / self.day_seconds
        morning = 60.0 * math.exp(-((hours - 8.0) ** 2) / 4.0)
        evening = 70.0 * math.exp(-((hours - 18.0) ** 2) / 5.0)
        jitter = float(self._rng.normal(0.0, 4.0))
        return 400.0 + morning + evening + jitter

    # ------------------------------------------------------------------
    # RF noise
    # ------------------------------------------------------------------

    def add_noise_region(self, region: NoiseRegion) -> None:
        """Register an interference region (used by the fault injector)."""
        self.noise_regions.append(region)

    def noise_floor(self, time: float, position: Tuple[float, float]) -> float:
        """RF noise floor (dBm) at a point, including active interference."""
        noise = self.base_noise_floor
        for region in self.noise_regions:
            if region.active_at(time, position):
                noise += region.delta_db
        return noise

    def prune_noise_regions(self, time: float) -> None:
        """Drop interference regions that ended before ``time``."""
        self.noise_regions = [r for r in self.noise_regions if r.end > time]
