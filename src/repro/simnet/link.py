"""Per-link state and the shared radio medium.

A :class:`Link` is a *directed* channel a -> b.  Its RSSI at time t is

    tx_power - path_loss(d) + shadowing + fading(t) - degradation(t)

where shadowing is static per link, fading is an Ornstein-Uhlenbeck process
updated lazily (only when the link is actually used), and degradation is
injected by faults.  The :class:`Medium` owns every link within radio range
plus the environment's noise floor, and answers the two questions the upper
layers ask: *what RSSI does b see from a right now* and *with what
probability does a single frame from a reach b*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.simnet.environment import Environment
from repro.simnet.radio import RadioParams, path_loss_db, prr_from_snr
from repro.simnet.topology import Topology


@dataclass
class DegradationWindow:
    """Extra attenuation applied to a link during [start, end)."""

    start: float
    end: float
    extra_db: float

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end


class Link:
    """Directed link a -> b with static shadowing and temporal fading."""

    __slots__ = (
        "src",
        "dst",
        "distance",
        "shadowing_db",
        "_fade_db",
        "_fade_time",
        "_params",
        "_rng",
        "degradations",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        distance: float,
        shadowing_db: float,
        params: RadioParams,
        rng: np.random.Generator,
    ):
        self.src = src
        self.dst = dst
        self.distance = distance
        self.shadowing_db = shadowing_db
        self._fade_db = 0.0
        self._fade_time = 0.0
        self._params = params
        self._rng = rng
        self.degradations: List[DegradationWindow] = []

    def _fading(self, time: float) -> float:
        """Advance the OU fading process lazily to ``time`` and sample it."""
        dt = time - self._fade_time
        if dt > 0:
            params = self._params
            decay = math.exp(-dt / params.fading_tau_s)
            noise_scale = params.fading_sigma_db * math.sqrt(
                max(0.0, 1.0 - decay * decay)
            )
            self._fade_db = self._fade_db * decay + float(
                self._rng.normal(0.0, 1.0)
            ) * noise_scale
            self._fade_time = time
        return self._fade_db

    def _degradation(self, time: float) -> float:
        return sum(w.extra_db for w in self.degradations if w.active_at(time))

    def add_degradation(self, window: DegradationWindow) -> None:
        self.degradations.append(window)

    def rssi(self, time: float) -> float:
        """Received signal strength (dBm) at ``dst`` for a frame from ``src``."""
        params = self._params
        return (
            params.tx_power_dbm
            - path_loss_db(self.distance, params)
            + self.shadowing_db
            + self._fading(time)
            - self._degradation(time)
        )


class Medium:
    """All links within radio range, plus the ambient noise floor.

    Args:
        topology: Node layout.
        environment: Supplies the (possibly interference-raised) noise floor.
        params: Radio constants.
        rng: Random stream for shadowing/fading.
        max_range: Links are instantiated only for pairs within this many
            meters; beyond it frames are never received.
    """

    def __init__(
        self,
        topology: Topology,
        environment: Environment,
        params: RadioParams,
        rng: np.random.Generator,
        max_range: float = 150.0,
    ):
        self.topology = topology
        self.environment = environment
        self.params = params
        self._rng = rng
        self.max_range = max_range
        self._links: Dict[Tuple[int, int], Link] = {}
        self._build_links()

    def _build_links(self) -> None:
        ids = self.topology.node_ids
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                distance = self.topology.distance(a, b)
                if distance > self.max_range:
                    continue
                # Shadowing is mostly symmetric with a small asymmetric part,
                # matching empirical 802.15.4 link studies.
                common = float(self._rng.normal(0.0, self.params.shadowing_sigma_db))
                asym_ab = float(self._rng.normal(0.0, 0.8))
                asym_ba = float(self._rng.normal(0.0, 0.8))
                self._links[(a, b)] = Link(
                    a, b, distance, common + asym_ab, self.params, self._rng
                )
                self._links[(b, a)] = Link(
                    b, a, distance, common + asym_ba, self.params, self._rng
                )

    def rebuild_links_for(self, node_id: int) -> None:
        """Recompute every link touching ``node_id`` after a relocation.

        Pairs now out of range are dropped; pairs still (or newly) in range
        get fresh distance and shadowing.  Re-drawing shadowing even for
        surviving pairs is intentional — a moved node sees a new multipath
        environment.  Peers are visited in ascending id order so the rng
        draw sequence is a pure function of the call, keeping runs
        bit-reproducible.
        """
        positions = self.topology.positions
        if node_id not in positions:
            raise KeyError(f"unknown node {node_id}")
        for key in [k for k in self._links if node_id in k]:
            del self._links[key]
        for other in sorted(positions):
            if other == node_id:
                continue
            distance = self.topology.distance(node_id, other)
            if distance > self.max_range:
                continue
            common = float(self._rng.normal(0.0, self.params.shadowing_sigma_db))
            asym_ab = float(self._rng.normal(0.0, 0.8))
            asym_ba = float(self._rng.normal(0.0, 0.8))
            a, b = node_id, other
            self._links[(a, b)] = Link(
                a, b, distance, common + asym_ab, self.params, self._rng
            )
            self._links[(b, a)] = Link(
                b, a, distance, common + asym_ba, self.params, self._rng
            )

    def link(self, src: int, dst: int) -> Optional[Link]:
        """The directed link src -> dst, or ``None`` if out of range."""
        return self._links.get((src, dst))

    def links_from(self, src: int) -> List[Link]:
        """All outgoing links of ``src``."""
        return [l for (a, _b), l in self._links.items() if a == src]

    def neighbors(self, node_id: int) -> List[int]:
        """Nodes within radio range of ``node_id``."""
        return [dst for (src, dst) in self._links if src == node_id]

    def rssi(self, src: int, dst: int, time: float) -> Optional[float]:
        """RSSI of src at dst, or ``None`` if out of range."""
        link = self.link(src, dst)
        if link is None:
            return None
        return link.rssi(time)

    def frame_success_probability(self, src: int, dst: int, time: float) -> float:
        """Probability a single frame from src is decoded at dst."""
        link = self.link(src, dst)
        if link is None:
            return 0.0
        rssi = link.rssi(time)
        noise = self.environment.noise_floor(time, self.topology.positions[dst])
        return prr_from_snr(rssi - noise, self.params)

    def degrade_region(
        self,
        center: Tuple[float, float],
        radius: float,
        start: float,
        end: float,
        extra_db: float,
    ) -> int:
        """Attenuate every link with an endpoint inside a disk.

        Returns:
            Number of (directed) links affected.
        """
        affected = 0
        for (src, dst), link in self._links.items():
            for endpoint in (src, dst):
                x, y = self.topology.positions[endpoint]
                if math.hypot(x - center[0], y - center[1]) <= radius:
                    link.add_degradation(DegradationWindow(start, end, extra_db))
                    affected += 1
                    break
        return affected
