"""Warm-started per-packet NNLS: same answers, bounded memory.

The warm start seeds each node's solve from its previous solution's
passive set — a convergence-speed lever that must never change the
solution.  The contract pinned here:

* A streaming session with the warm start on is **bit-identical** to one
  with it off (events, reports, weights — everything).
* The cache is bounded: LRU past ``max_nodes``, staleness past
  ``max_age_epochs``, both counted in
  ``repro_warmstart_evictions_total``.
* A node absent for more than ``max_age_epochs`` of its own epochs gets
  a cold solve — identical to today's (cold-path) output, checked by
  running a whole session at ``warm_max_age=1`` so nearly every solve
  takes the fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import (
    StreamingDiagnosisSession,
    WarmStartCache,
    iter_packets,
)
from repro.obs import MetricsRegistry
from repro.traces.frame import as_frame


@pytest.fixture(scope="module")
def testbed_packets(testbed_trace):
    return list(iter_packets(as_frame(testbed_trace)))


def _replay(tool, packets, **session_kwargs):
    session = StreamingDiagnosisSession(
        tool, registry=MetricsRegistry(enabled=False), **session_kwargs
    )
    updates = [
        u for p in packets if (u := session.push_packet(*p)) is not None
    ]
    events = [e for u in updates for e in u.events] + session.finish()
    return session, updates, events


def _assert_identical_replays(ref, out):
    _, ref_updates, ref_events = ref
    _, out_updates, out_events = out
    assert len(out_updates) == len(ref_updates)
    for a, b in zip(ref_updates, out_updates):
        assert a.is_exception == b.is_exception
        assert a.score == b.score
        if a.report is None:
            assert b.report is None
        else:
            assert np.array_equal(a.report.weights, b.report.weights)
            assert a.report.relative_residual == b.report.relative_residual
    assert out_events == ref_events


def test_warm_start_is_bit_identical_to_cold(testbed_tool, testbed_packets):
    cold = _replay(testbed_tool, testbed_packets, warm_start=False)
    warm = _replay(testbed_tool, testbed_packets, warm_start=True)
    assert cold[1], "replay produced no updates"
    _assert_identical_replays(cold, warm)


def test_stale_nodes_fall_back_to_cold_identically(
    testbed_tool, testbed_packets
):
    """max_age=1 forces the staleness fallback constantly — output must
    still match today's cold path bit for bit."""
    cold = _replay(testbed_tool, testbed_packets, warm_start=False)
    stale = _replay(
        testbed_tool, testbed_packets, warm_start=True, warm_max_age=1
    )
    _assert_identical_replays(cold, stale)


def test_tiny_cache_evicts_and_stays_identical(testbed_tool, testbed_packets):
    cold = _replay(testbed_tool, testbed_packets, warm_start=False)
    registry = MetricsRegistry()
    session = StreamingDiagnosisSession(
        testbed_tool, registry=registry, warm_start=True, warm_cache_nodes=2
    )
    updates = [
        u
        for p in testbed_packets
        if (u := session.push_packet(*p)) is not None
    ]
    events = [e for u in updates for e in u.events] + session.finish()
    _assert_identical_replays(cold, (session, updates, events))
    evictions = registry.counter("repro_warmstart_evictions_total")
    assert evictions.value > 0
    assert len(session._warm) <= 2


# ----------------------------------------------------------------------
# WarmStartCache unit behaviour
# ----------------------------------------------------------------------


def test_cache_lru_capacity_eviction():
    registry = MetricsRegistry()
    cache = WarmStartCache(max_nodes=2, registry=registry)
    cache.put(1, 10, np.ones(4))
    cache.put(2, 10, np.ones(4))
    cache.put(1, 11, np.ones(4))  # re-solve 1: now 2 is least recent
    cache.put(3, 10, np.ones(4))
    assert cache.get(2, 11) is None  # least-recently-solved: evicted
    assert cache.get(1, 12) is not None
    assert cache.get(3, 11) is not None
    evictions = registry.counter("repro_warmstart_evictions_total")
    assert evictions.value == 1


def test_cache_staleness_eviction_counts():
    registry = MetricsRegistry()
    cache = WarmStartCache(max_age_epochs=32, registry=registry)
    cache.put(7, 100, np.arange(4.0))
    assert cache.get(7, 132) is not None  # exactly at the age bound
    assert cache.get(7, 165) is None  # absent > 32 epochs: cold solve
    assert len(cache) == 0
    evictions = registry.counter("repro_warmstart_evictions_total")
    assert evictions.value == 1


def test_cache_clear_is_not_an_eviction():
    registry = MetricsRegistry()
    cache = WarmStartCache(registry=registry)
    cache.put(1, 5, np.ones(4))
    cache.clear()
    assert len(cache) == 0
    evictions = registry.counter("repro_warmstart_evictions_total")
    assert evictions.value == 0


def test_cache_rejects_bad_bounds():
    with pytest.raises(ValueError):
        WarmStartCache(max_nodes=0)
    with pytest.raises(ValueError):
        WarmStartCache(max_age_epochs=0)


def test_factor_cache_is_bit_transparent(testbed_tool, testbed_packets):
    """Cached factorizations change latency only, never solved values.

    A warm session's ``NNLSSolverCache`` reuses passive-set Cholesky
    factors across packets; the replay must stay bit-identical to the
    stateless cold path, and on a stream against one model the cache
    must actually be doing the work (hits dominate misses).
    """
    ref = _replay(testbed_tool, testbed_packets, warm_start=False)
    out = _replay(testbed_tool, testbed_packets, warm_start=True)
    _assert_identical_replays(ref, out)
    session = out[0]
    cache = session._solver_cache
    assert cache is not None and len(cache) > 0
    assert cache.hits > cache.misses


def test_factor_cache_cleared_on_rotation(testbed_tool, testbed_packets):
    """set_model must drop cached factors — they belong to the old Ψ."""
    session, _, _ = _replay(testbed_tool, testbed_packets, warm_start=True)
    assert len(session._solver_cache) > 0
    session.set_model(testbed_tool)
    assert len(session._solver_cache) == 0
    assert session._solver_cache.hits > 0  # counters survive as history


def test_factor_cache_rank_deficient_fallback():
    """Duplicate Ψ rows make a pattern's Gram singular: the solver must
    fall back to lstsq, cached and uncached alike, and still match
    scipy's reference NNLS."""
    from scipy.optimize import nnls

    from repro.core.inference import NNLSSolverCache, infer_weights_batch
    from repro.obs import MetricsRegistry

    rng = np.random.default_rng(11)
    base = rng.random((3, 6))
    Psi = np.vstack([base, base[1]])  # row 3 duplicates row 1
    states = rng.random((5, 6))
    cache = NNLSSolverCache(registry=MetricsRegistry(enabled=False))
    cold, cold_res = infer_weights_batch(Psi, states)
    for _ in range(2):  # second pass exercises cache hits
        cached, cached_res = infer_weights_batch(
            Psi, states, solver_cache=cache
        )
        assert np.array_equal(cached, cold)
        assert np.array_equal(cached_res, cold_res)
    for i in range(len(states)):
        expected, _ = nnls(Psi.T, states[i])
        np.testing.assert_allclose(
            Psi.T @ cold[i], Psi.T @ expected, atol=1e-8
        )


def test_factor_cache_bounded():
    """Past max_patterns the cache resets rather than growing without
    bound (and keeps solving correctly afterwards)."""
    from repro.core.inference import NNLSSolverCache, infer_weights_batch
    from repro.obs import MetricsRegistry

    rng = np.random.default_rng(12)
    Psi = rng.random((4, 9))
    cache = NNLSSolverCache(
        max_patterns=2, registry=MetricsRegistry(enabled=False)
    )
    states = rng.random((40, 9))
    for i in range(len(states)):
        # Per-state both sides: batch composition shifts low bits (see
        # incidents.py), the cache must not.
        expected, _ = infer_weights_batch(Psi, states[i])
        got, _ = infer_weights_batch(
            Psi, states[i], solver_cache=cache
        )
        assert np.array_equal(got[0], expected[0])
    assert len(cache) <= 2
    with pytest.raises(ValueError):
        NNLSSolverCache(max_patterns=0)
