"""Format dispatch regressions: suffix inference and explicit overrides.

``detect_format`` once compared the suffix case-sensitively, so a file
named ``TRACE.NPZ`` (case-folding filesystems, shouty export scripts)
fell through to the JSONL parser and died on a binary decode error.
These tests pin the case-insensitive behaviour and the ``fmt=`` escape
hatch that bypasses suffix inference entirely.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.traces.io import detect_format, load_frame, save_frame
from tests.test_trace_frame import assert_frames_equal, random_frame


@pytest.mark.parametrize(
    "name, expected",
    [
        ("trace.npz", "npz"),
        ("trace.NPZ", "npz"),
        ("trace.Npz", "npz"),
        ("TRACE.nPz", "npz"),
        ("trace.jsonl", "jsonl"),
        ("trace.JSONL", "jsonl"),
        ("trace.txt", "jsonl"),
        ("trace", "jsonl"),
        ("archive.npz.bak", "jsonl"),  # only the final suffix counts
    ],
)
def test_detect_format_is_case_insensitive(name, expected):
    assert detect_format(name) == expected
    assert detect_format(Path("/some/dir") / name) == expected


def test_uppercase_npz_suffix_uses_npz_codec(tmp_path):
    """Regression: .NPZ must not reach the JSONL parser."""
    frame = random_frame(seed=3)
    path = tmp_path / "TRACE.NPZ"
    save_frame(frame, path)
    # NPZ files start with the zip magic, not a JSON header line.
    assert path.read_bytes()[:2] == b"PK"
    assert_frames_equal(load_frame(path), frame)


def test_explicit_fmt_overrides_suffix(tmp_path):
    frame = random_frame(seed=4)
    path = tmp_path / "trace.dat"  # suffix says jsonl, override says npz
    save_frame(frame, path, fmt="npz")
    assert path.read_bytes()[:2] == b"PK"
    assert_frames_equal(load_frame(path, fmt="npz"), frame)

    # And the other direction: a .npz-named file forced through JSONL.
    text_path = tmp_path / "trace.npz"
    save_frame(frame, text_path, fmt="jsonl")
    assert text_path.read_bytes()[:1] == b"{"
    loaded = load_frame(text_path, fmt="jsonl")
    assert len(loaded) == len(frame)


def test_unknown_fmt_rejected(tmp_path):
    frame = random_frame(seed=5)
    with pytest.raises(ValueError, match="unknown trace format"):
        save_frame(frame, tmp_path / "t.jsonl", fmt="parquet")
    (tmp_path / "t.jsonl").write_text("")
    with pytest.raises(ValueError, match="unknown trace format"):
        load_frame(tmp_path / "t.jsonl", fmt="parquet")
