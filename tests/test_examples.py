"""Smoke tests: the fast examples run end to end.

Each example is imported as a module and its ``main()`` executed; stdout
is captured by pytest.  The two long-running examples (live monitoring,
the CitySee study) are exercised indirectly by their underlying harness
tests instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        old_argv = sys.argv
        sys.argv = [str(path)]
        try:
            module.main()
        finally:
            sys.argv = old_argv
    finally:
        sys.modules.pop(spec.name, None)


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "representative matrix" in out
    assert "diagnosis of node 22" in out


def test_incident_report_runs(capsys):
    run_example("incident_report.py")
    out = capsys.readouterr().out
    assert "Incident report" in out
    assert "PRR cost" in out


def test_compare_baselines_runs(capsys):
    run_example("compare_baselines.py")
    out = capsys.readouterr().out
    assert "scoreboard" in out
    assert "VN2" in out and "Sympathy" in out
