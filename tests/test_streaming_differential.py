"""Differential harness: streaming engine is bit-identical to batch.

For each trace the full diagnosis path runs twice —

* **batch**: ``build_states`` -> ``detect_exceptions`` ->
  ``IncidentAggregator.extract`` (the paper's offline pipeline),
* **streaming**: packets replayed one at a time in arrival order through
  ``StreamingStateBuilder`` / ``StreamingExceptionDetector`` /
  ``StreamingDiagnosisSession`` —

and the two must agree exactly: the same state matrix (bit for bit,
after reordering the time-major stream into the batch's node-major
order), the same exception set, and ``==``-equal incident lists.
Diagnosis weight vectors are compared with ``np.allclose`` — the batch
NNLS solver is vectorized over many right-hand sides and its results
vary at the ULP level with batch composition, which is exactly why the
incident path (where strengths feed clustering decisions) solves one
state at a time on both sides.

The tier-1 run covers the ``tiny`` and ``small`` CitySee presets plus
the testbed trace; set ``VN2_DIFF_ALL=1`` to additionally sweep the
scaled ``medium`` and ``full`` presets, as the CI streaming job does.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.exceptions import StreamingExceptionDetector, detect_exceptions
from repro.core.incidents import IncidentAggregator
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import StreamingStateBuilder, build_states, stack_states
from repro.core.streaming import StreamingDiagnosisSession, iter_packets
from repro.traces.citysee import CitySeeProfile, generate_citysee_frame
from repro.traces.frame import as_frame

RUN_ALL_PRESETS = os.environ.get("VN2_DIFF_ALL", "") == "1"

#: Preset name -> a cost-reduced variant (same shape, fewer days).
PRESET_VARIANTS = {
    "tiny": CitySeeProfile.tiny(days=0.75),
    "small": CitySeeProfile.small(days=0.25),
    "medium": CitySeeProfile.medium(days=0.3),
    "full": CitySeeProfile.full(days=0.055),
}
TIER1_PRESETS = ("tiny", "small")


def _preset_params():
    params = []
    for name in PRESET_VARIANTS:
        marks = ()
        if name not in TIER1_PRESETS and not RUN_ALL_PRESETS:
            marks = (pytest.mark.skip(reason="set VN2_DIFF_ALL=1 to run"),)
        params.append(pytest.param(name, marks=marks))
    return params


@pytest.fixture(scope="module")
def preset_run():
    """Lazy (frame, fitted tool) per preset, built once per module."""
    cache = {}

    def get(name):
        if name not in cache:
            frame = generate_citysee_frame(PRESET_VARIANTS[name])
            # Fixed rank: the differential property is about the diagnosis
            # path, not rank selection, and a sweep per preset is slow.
            tool = VN2(VN2Config(rank=12)).fit(frame)
            cache[name] = (frame, tool)
        return cache[name]

    return get


def _positions(frame):
    positions = {
        int(k): tuple(v)
        for k, v in frame.metadata.get("positions", {}).items()
    }
    return positions or None


def _canonical(states):
    """Time-major streamed states reordered into batch node-major order."""
    return states._take(np.lexsort((states.epochs_to, states.node_ids)))


def assert_same_states(streamed, batch, context):
    canon = _canonical(streamed)
    assert len(canon) == len(batch), context
    for column in ("values", "node_ids", "epochs_from", "epochs_to",
                   "times_from", "times_to"):
        assert np.array_equal(getattr(canon, column), getattr(batch, column)), (
            f"{context}: state column {column} differs"
        )


def _assert_differential(tool, frame, context):
    frame = as_frame(frame)
    positions = _positions(frame)
    threshold = tool.config.exception_threshold
    batch_states = build_states(frame)

    # 1. States: packet-at-a-time replay vs whole-frame differencing.
    builder = StreamingStateBuilder()
    streamed = []
    for packet in iter_packets(frame):
        state = builder.push(*packet)
        if state is not None:
            streamed.append(state)
    assert_same_states(stack_states(streamed), batch_states, context)

    # 2. Exceptions: one-row-at-a-time ingestion vs one-chunk batch rule.
    detector = StreamingExceptionDetector(threshold_ratio=threshold)
    for i in range(len(batch_states)):
        detector.update(batch_states.values[i])
    online = detector.finalize(batch_states)
    batch_exc = detect_exceptions(batch_states, threshold_ratio=threshold)
    assert np.array_equal(online.indices, batch_exc.indices), context
    assert np.array_equal(online.epsilon, batch_exc.epsilon), context

    # 3. Incidents: live session vs batch aggregator — exact equality,
    # including peak/total strengths (shared per-state NNLS solves).
    aggregator = IncidentAggregator(
        tool, positions=positions, exception_threshold=threshold
    )
    batch_incidents = aggregator.extract(batch_states)
    session = StreamingDiagnosisSession(
        tool, positions=positions, threshold_ratio=threshold
    )
    updates = [u for u in session.process(frame)]
    session.finish()
    stream_incidents = session.tracker.sorted_incidents()
    assert stream_incidents == batch_incidents, context

    # 4. Diagnoses: same screened set, allclose weights/residuals.
    flagged = {
        (u.state.node_id, u.state.epoch_to): u
        for u in updates
        if u.is_exception
    }
    batch_pairs = tool.diagnose_exceptions(batch_states)
    assert len(flagged) == len(batch_pairs), context
    for provenance, report in batch_pairs:
        update = flagged[(provenance.node_id, provenance.epoch_to)]
        assert update.state.epoch_from == provenance.epoch_from, context
        assert np.allclose(update.report.weights, report.weights), context
        assert np.isclose(update.report.residual, report.residual), context

    assert session.n_packets == len(frame)
    assert session.n_states == len(batch_states)
    return len(batch_states), len(batch_pairs), len(batch_incidents)


@pytest.mark.parametrize("preset", _preset_params())
def test_citysee_streaming_bit_identical_to_batch(preset, preset_run):
    frame, tool = preset_run(preset)
    n_states, n_exceptions, _ = _assert_differential(tool, frame, preset)
    assert n_states > 0 and n_exceptions > 0


def test_testbed_streaming_bit_identical_to_batch(testbed_tool, testbed_trace):
    n_states, n_exceptions, _ = _assert_differential(
        testbed_tool, as_frame(testbed_trace), "testbed"
    )
    assert n_states > 0 and n_exceptions > 0


def test_diagnose_stream_flushes_open_incidents(testbed_tool, testbed_trace):
    """The generator facade ends with a state-less flush update."""
    updates = list(testbed_tool.diagnose_stream(as_frame(testbed_trace)))
    assert updates, "stream produced no updates"
    opened = [e for u in updates for e in u.events if e.kind == "open"]
    closed = [e for u in updates for e in u.events if e.kind == "close"]
    assert len(opened) == len(closed) > 0
    assert sorted(e.incident_id for e in opened) == sorted(
        e.incident_id for e in closed
    )
    final = updates[-1]
    if final.state is None:  # flush update present iff incidents were open
        assert final.events and all(e.kind == "close" for e in final.events)


def test_stat_less_model_diagnoses_everything(tmp_path, testbed_tool,
                                              testbed_trace):
    """A legacy save (no training stats) streams like the batch fallback:
    no screen, every state diagnosed."""
    path = tmp_path / "model"
    testbed_tool.save(path)
    with np.load(path.with_suffix(".npz")) as arrays:
        stripped = {
            k: arrays[k] for k in arrays.files if not k.startswith("train_")
        }
    np.savez_compressed(path.with_suffix(".npz"), **stripped)
    # A real legacy save predates model_version too — drop it from the
    # sidecar so the load is unchecked rather than integrity-failed.
    sidecar_path = path.with_suffix(".json")
    sidecar = json.loads(sidecar_path.read_text())
    sidecar.pop("model_version", None)
    sidecar_path.write_text(json.dumps(sidecar))
    legacy = VN2.load(path)

    frame = as_frame(testbed_trace)
    session = StreamingDiagnosisSession(legacy)
    updates = list(session.process(frame))
    assert updates and all(u.is_exception for u in updates)
    assert all(u.report is not None for u in updates)
