"""Differential harness: parallel runner output is bit-identical to serial.

For each profile preset the same job grid is produced three ways —

* direct generator calls in this process (the pre-runner code path),
* ``run_jobs(..., n_workers=1)`` (the CLI's ``--jobs 1``),
* ``run_jobs(..., n_workers=N)`` across a process pool (``--jobs N``,
  ``N`` from ``VN2_TEST_JOBS``, default 4),

each against its own cache directory, and every column of every frame
must satisfy ``np.array_equal``.  This is the acceptance property the
engine advertises: sharding a scenario grid over processes changes
wall-clock only, never one bit of the data.

The tier-1 run covers the ``tiny`` and ``small`` presets (scaled-down
day counts keep each preset's grid a few seconds); set ``VN2_DIFF_ALL=1``
to additionally sweep the scaled ``medium`` and ``full`` presets, as the
CI runner job does.  ``VN2_TIMINGS_DIR``, when set, collects the parallel
runs' per-job timing JSONs (uploaded as a CI artifact).
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.runner import (
    CitySeeJob,
    TestbedJob,
    citysee_seed_sweep,
    run_jobs,
)
from repro.traces.citysee import CitySeeProfile, generate_citysee_frame
from repro.traces.frame import TraceFrame
from repro.traces.testbed import TestbedScenario, generate_testbed_frame

N_TEST_JOBS = int(os.environ.get("VN2_TEST_JOBS", "4"))
RUN_ALL_PRESETS = os.environ.get("VN2_DIFF_ALL", "") == "1"

#: Preset name -> a grid-cost-reduced variant (same shape, fewer days;
#: each preset keeps warmup < duration so the generator stays valid).
PRESET_VARIANTS = {
    "tiny": CitySeeProfile.tiny(days=0.75),
    "small": CitySeeProfile.small(days=0.25),
    "medium": CitySeeProfile.medium(days=0.3),
    "full": CitySeeProfile.full(days=0.055),
}
TIER1_PRESETS = ("tiny", "small")


def _preset_params():
    params = []
    for name in PRESET_VARIANTS:
        marks = ()
        if name not in TIER1_PRESETS and not RUN_ALL_PRESETS:
            marks = (pytest.mark.skip(reason="set VN2_DIFF_ALL=1 to run"),)
        params.append(pytest.param(name, marks=marks))
    return params


def assert_columns_equal(a: TraceFrame, b: TraceFrame, context: str) -> None:
    """Bit-for-bit equality of every frame column."""
    for column in (
        "node_ids", "epochs", "generated_at", "received_at",
        "values", "arrival_times", "arrival_nodes",
    ):
        assert np.array_equal(getattr(a, column), getattr(b, column)), (
            f"{context}: column {column} differs"
        )
    assert a.ground_truth == b.ground_truth, context
    assert a.packets_generated == b.packets_generated, context
    assert a.packets_received == b.packets_received, context


def _spool_timings(report, name: str) -> None:
    timings_dir = os.environ.get("VN2_TIMINGS_DIR")
    if timings_dir:
        report.write_timings(os.path.join(timings_dir, f"{name}.json"))


@pytest.mark.parametrize("preset", _preset_params())
def test_citysee_parallel_bit_identical_to_serial(preset, tmp_path):
    profile = PRESET_VARIANTS[preset]
    jobs = citysee_seed_sweep(profile, 2, namespace="diff")

    direct = [
        generate_citysee_frame(job.profile, use_cache=False) for job in jobs
    ]
    serial = run_jobs(jobs, n_workers=1, cache_dir=tmp_path / "serial")
    parallel = run_jobs(
        jobs, n_workers=N_TEST_JOBS, cache_dir=tmp_path / "parallel"
    )
    _spool_timings(parallel, f"differential-citysee-{preset}")

    assert serial.ok and parallel.ok
    for job, d, s, p in zip(
        jobs, direct, serial.frames(), parallel.frames()
    ):
        context = f"{preset} {job.describe()}"
        assert_columns_equal(d, s, f"{context} direct-vs-serial")
        assert_columns_equal(s, p, f"{context} serial-vs-parallel")
        assert len(d) > 0, context


def test_citysee_episode_parallel_bit_identical(tmp_path):
    """The episode generator path (extra fault build) is also race-free."""
    profile = dataclasses.replace(CitySeeProfile.tiny(), days=1.0)
    jobs = [
        CitySeeJob(profile, episode=True, episode_days=(0.4, 0.6)),
        CitySeeJob(dataclasses.replace(profile, seed=77),
                   episode=True, episode_days=(0.4, 0.6)),
    ]
    serial = run_jobs(jobs, n_workers=1, cache_dir=tmp_path / "serial")
    parallel = run_jobs(
        jobs, n_workers=N_TEST_JOBS, cache_dir=tmp_path / "parallel"
    )
    _spool_timings(parallel, "differential-citysee-episode")
    for job, s, p in zip(jobs, serial.frames(), parallel.frames()):
        assert_columns_equal(s, p, job.describe())
        assert s.metadata.get("episode") is True


def test_testbed_parallel_bit_identical_to_serial(tmp_path):
    jobs = [
        TestbedJob(scenario=TestbedScenario.EXPANSIVE,
                   duration_s=1800.0, warmup_s=300.0, report_period_s=120.0),
        TestbedJob(scenario=TestbedScenario.LOCAL,
                   duration_s=1800.0, warmup_s=300.0, report_period_s=120.0),
    ]
    direct = [
        generate_testbed_frame(
            scenario=job.scenario, seed=job.seed, duration_s=job.duration_s,
            warmup_s=job.warmup_s, report_period_s=job.report_period_s,
        )
        for job in jobs
    ]
    serial = run_jobs(jobs, n_workers=1, cache_dir=tmp_path / "serial")
    parallel = run_jobs(
        jobs, n_workers=N_TEST_JOBS, cache_dir=tmp_path / "parallel"
    )
    _spool_timings(parallel, "differential-testbed")
    for job, d, s, p in zip(jobs, direct, serial.frames(), parallel.frames()):
        assert_columns_equal(d, s, f"{job.describe()} direct-vs-serial")
        assert_columns_equal(s, p, f"{job.describe()} serial-vs-parallel")
        assert len(d) > 0


def test_same_grid_twice_agrees_across_worker_counts(tmp_path):
    """The --jobs 1 vs --jobs N contract on a mixed grid, cache warm."""
    profile = CitySeeProfile.tiny(days=0.5)
    jobs = [
        CitySeeJob(profile),
        TestbedJob(scenario=TestbedScenario.EXPANSIVE,
                   duration_s=1800.0, warmup_s=300.0, report_period_s=120.0),
    ]
    first = run_jobs(jobs, n_workers=1, cache_dir=tmp_path)
    # Second run hits the spooled cache entries — still identical frames.
    second = run_jobs(jobs, n_workers=N_TEST_JOBS, cache_dir=tmp_path)
    for job, a, b in zip(jobs, first.frames(), second.frames()):
        assert_columns_equal(a, b, job.describe())
