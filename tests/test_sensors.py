"""Unit tests for the sensor suite."""

import numpy as np
import pytest

from repro.simnet.environment import Environment
from repro.simnet.hardware import ClockParams, EnergyParams, Hardware
from repro.simnet.sensors import SensorSuite


@pytest.fixture
def suite():
    env = Environment(rng=np.random.default_rng(0))
    hw = Hardware(EnergyParams(), ClockParams(), np.random.default_rng(1))
    return SensorSuite(env, hw, position=(10.0, 20.0),
                       rng=np.random.default_rng(2)), hw


def test_readings_plausible(suite):
    sensors, _hw = suite
    reading = sensors.read(43200.0)  # noon
    assert 10.0 < reading.temperature < 45.0
    assert 5.0 <= reading.humidity <= 100.0
    assert reading.light > 500.0
    assert 300.0 < reading.co2 < 600.0
    assert 2.5 < reading.voltage < 3.2


def test_voltage_tracks_battery(suite):
    sensors, hw = suite
    v0 = sensors.read(0.0).voltage
    hw.battery.consume(hw.battery.capacity_j * 0.6)
    v1 = sensors.read(0.0).voltage
    assert v1 < v0 - 0.05


def test_calibration_offsets_differ_between_nodes():
    env = Environment(rng=np.random.default_rng(0))
    hw = Hardware(EnergyParams(), ClockParams(), np.random.default_rng(1))
    a = SensorSuite(env, hw, (0.0, 0.0), np.random.default_rng(10))
    b = SensorSuite(env, hw, (0.0, 0.0), np.random.default_rng(11))
    ta = np.mean([a.read(0.0).temperature for _ in range(30)])
    tb = np.mean([b.read(0.0).temperature for _ in range(30)])
    assert ta != pytest.approx(tb, abs=1e-3)


def test_ambient_temperature_excludes_offset(suite):
    sensors, _ = suite
    ambient = sensors.ambient_temperature(0.0)
    env = Environment(rng=np.random.default_rng(0))
    # same diurnal scale, no calibration: within noise of the raw field
    assert abs(ambient - env.temperature(0.0, (10.0, 20.0))) < 2.0


def test_light_never_negative(suite):
    sensors, _ = suite
    for t in np.linspace(0, 86400, 49):
        assert sensors.read(float(t)).light >= 0.0
