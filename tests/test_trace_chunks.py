"""Chunked and tailing trace readers: bounded-memory IO equals full loads.

``iter_frame_chunks`` must reproduce ``load_frame`` column for column at
any chunk size and for both codecs, and ``tail_frame_jsonl`` must keep up
with a concurrently appending writer — the two ingestion paths behind
``vn2 watch`` and the streaming benchmark.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.traces.frame import as_frame
from repro.traces.io import (
    iter_frame_chunks,
    load_frame,
    read_frame_header,
    save_frame,
    tail_frame_jsonl,
)


@pytest.fixture(scope="module")
def frame(testbed_trace):
    return as_frame(testbed_trace)


@pytest.fixture(scope="module", params=["jsonl", "npz"])
def saved_path(request, frame, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / f"trace.{request.param}"
    save_frame(frame, path, fmt=request.param)
    return path


COLUMNS = ("node_ids", "epochs", "generated_at", "received_at", "values")


@pytest.mark.parametrize("chunk_rows", [1, 97, 4096, 10**6])
def test_chunks_concatenate_to_full_frame(saved_path, frame, chunk_rows):
    chunks = list(iter_frame_chunks(saved_path, chunk_rows=chunk_rows))
    assert sum(len(c) for c in chunks) == len(frame)
    assert all(len(c) <= chunk_rows for c in chunks)
    # Compare against a full load of the same file: the chunked reader's
    # contract is bit-equality with load_frame (JSONL itself rounds floats
    # on write, identically for both readers).
    full = load_frame(saved_path)
    for column in COLUMNS:
        streamed = np.concatenate([getattr(c, column) for c in chunks])
        assert np.array_equal(streamed, getattr(full, column)), column


def test_read_frame_header_both_codecs(saved_path, frame):
    header = read_frame_header(saved_path)
    assert header["metadata"] == frame.metadata
    assert header["packets_generated"] == frame.packets_generated
    assert header["packets_received"] == frame.packets_received


def test_header_rejects_non_trace_file(tmp_path):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text(json.dumps({"hello": "world"}) + "\n")
    with pytest.raises(ValueError):
        read_frame_header(bogus)


def _row_dict(frame, i):
    return {
        "node_id": int(frame.node_ids[i]),
        "epoch": int(frame.epochs[i]),
        "generated_at": float(frame.generated_at[i]),
        "received_at": float(frame.received_at[i]),
        "values": frame.values[i].tolist(),
    }


def test_tail_reads_static_file_without_follow(frame, tmp_path):
    path = tmp_path / "static.jsonl"
    save_frame(frame, path, fmt="jsonl")
    loaded = load_frame(path)
    rows = list(tail_frame_jsonl(path, follow=False))
    assert len(rows) == len(frame)
    assert rows[0].node_id == int(frame.node_ids[0])
    assert np.array_equal(rows[-1].values, loaded.values[-1])


def test_tail_follows_growing_file(frame, tmp_path):
    """A background writer appends while the tail consumes: every row
    arrives, in order, including ones split across write() calls."""
    path = tmp_path / "growing.jsonl"
    n_rows = min(len(frame), 60)
    header = json.dumps(read_header_obj(frame))

    def writer():
        with path.open("a", encoding="utf-8") as fh:
            for i in range(n_rows):
                line = json.dumps(_row_dict(frame, i)) + "\n"
                # Split every line in two flushes to exercise the
                # partial-line buffer.
                fh.write(line[: len(line) // 2])
                fh.flush()
                fh.write(line[len(line) // 2 :])
                fh.flush()

    path.write_text(header + "\n")
    thread = threading.Thread(target=writer)
    thread.start()
    try:
        rows = list(
            tail_frame_jsonl(path, poll_s=0.05, idle_timeout=5.0)
        )
    finally:
        thread.join()
    assert len(rows) == n_rows
    for i, row in enumerate(rows):
        assert row.node_id == int(frame.node_ids[i])
        assert row.epoch == int(frame.epochs[i])
        assert np.array_equal(row.values, frame.values[i])


def read_header_obj(frame):
    """The header dict a JSONL save writes (via a real save)."""
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        scratch = Path(tmp) / "scratch.jsonl"
        save_frame(frame, scratch, fmt="jsonl")
        with scratch.open("r", encoding="utf-8") as fh:
            return json.loads(fh.readline())


def test_tail_stop_callable_ends_follow(frame, tmp_path):
    path = tmp_path / "stopped.jsonl"
    save_frame(frame, path, fmt="jsonl")
    seen = []
    rows = tail_frame_jsonl(
        path, poll_s=0.01, stop=lambda: len(seen) >= 0  # stop at first EOF
    )
    for row in rows:
        seen.append(row)
    assert len(seen) == len(frame)
