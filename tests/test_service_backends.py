"""Unit layer of the cluster refactor: ring, worker messages, rollup.

Socket-level cluster behavior lives in ``test_service_cluster.py``; this
file covers the pieces it is built from — consistent hashing, the
internal worker wire messages, the cross-process metrics merge, and the
in-child :class:`~repro.service.worker.ShardWorker` state machine driven
directly (no pipes, no processes).
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, merge_dumps, validate_exposition
from repro.service import protocol
from repro.service.backends import HashRing
from repro.service.worker import ShardWorker


# --------------------------------------------------------------------------
# HashRing
# --------------------------------------------------------------------------


def test_ring_lookup_is_deterministic_and_total():
    ring = HashRing(["w0", "w1", "w2"])
    keys = [f"deployment-{i}" for i in range(200)]
    owners = {k: ring.lookup(k) for k in keys}
    assert set(owners.values()) <= {"w0", "w1", "w2"}
    # Same ring built again → same placement (routing must be stable
    # across front-door restarts).
    again = HashRing(["w2", "w0", "w1"])  # insertion order irrelevant
    assert {k: again.lookup(k) for k in keys} == owners
    # Every worker gets a reasonable share at 200 keys x 64 vnodes.
    for worker in ("w0", "w1", "w2"):
        assert sum(1 for o in owners.values() if o == worker) > 20


def test_ring_remove_only_remaps_the_dead_workers_keys():
    ring = HashRing(["w0", "w1", "w2", "w3"])
    keys = [f"dep-{i}" for i in range(300)]
    before = {k: ring.lookup(k) for k in keys}
    ring.remove("w1")
    after = {k: ring.lookup(k) for k in keys}
    moved = [k for k in keys if before[k] != after[k]]
    # Minimal movement: exactly the dead worker's keys moved, nowhere else.
    assert set(moved) == {k for k in keys if before[k] == "w1"}
    assert all(owner != "w1" for owner in after.values())


def test_ring_empty_and_single_node():
    ring = HashRing()
    assert ring.lookup("anything") is None
    ring.add("w0")
    assert ring.lookup("anything") == "w0"
    ring.remove("w0")
    assert ring.lookup("anything") is None
    ring.remove("w0")  # idempotent


# --------------------------------------------------------------------------
# worker wire messages
# --------------------------------------------------------------------------


def test_worker_message_constructors_validate():
    samples = [
        protocol.assign("city", "w0"),
        protocol.shard_ingest("city", 7, [(1, 0, 0.0, None)]),
        protocol.shard_drain("city"),
        protocol.drain_all(),
        protocol.metrics_query(3),
        protocol.incidents_query(4, "city"),
        protocol.worker_hello("w0", 123),
        protocol.worker_heartbeat("w0", 123, 1.0, 2, 100),
        protocol.worker_ack("city", 7, 64, [], {"packets": 64}),
        protocol.worker_drained("city", [], {}),
        protocol.worker_metrics(3, "w0", {}, []),
        protocol.worker_incidents(4, "w0", {}),
        protocol.worker_bye("w0", {}),
        protocol.worker_error("w0", "boom", "city"),
    ]
    types = [protocol.check_worker_message(m) for m in samples]
    assert types == [
        "assign", "ingest", "drain", "drain_all", "metrics_query",
        "incidents_query", "w_hello", "w_heartbeat", "w_ack", "w_drained",
        "w_metrics", "w_incidents", "w_bye", "w_error",
    ]


def test_worker_message_validation_rejects_drift():
    with pytest.raises(protocol.ProtocolError):
        protocol.check_worker_message({"type": "assign"})  # no version
    with pytest.raises(protocol.ProtocolError):
        protocol.check_worker_message(
            {"v": protocol.PROTOCOL_VERSION, "type": "nonsense"}
        )
    with pytest.raises(protocol.ProtocolError):
        protocol.check_worker_message("not a dict")


# --------------------------------------------------------------------------
# registry dump / merge (the /metrics rollup)
# --------------------------------------------------------------------------


def _worker_registry(worker: str, n: int) -> MetricsRegistry:
    reg = MetricsRegistry(enabled=True)
    reg.counter(
        "repro_streaming_packets_total", "pkts",
        {"deployment": "city", "worker": worker},
    ).inc(n)
    hist = reg.histogram(
        "repro_streaming_packet_seconds", "lat", None, buckets=(0.001, 0.01)
    )
    for _ in range(n):
        hist.observe(0.005)
    reg.gauge("repro_incidents_open", "open", {"worker": worker}).set(2)
    return reg


def test_dump_merge_sums_counters_and_histograms():
    merged = merge_dumps(
        [_worker_registry("w0", 10).dump(), _worker_registry("w1", 5).dump()]
    )
    snap = merged.snapshot()
    per_worker = {
        s["labels"]["worker"]: s["value"]
        for s in snap["repro_streaming_packets_total"]["series"]
    }
    # Distinct worker labels stay distinct series in the rollup.
    assert per_worker == {"w0": 10, "w1": 5}
    hist = snap["repro_streaming_packet_seconds"]["series"][0]
    assert hist["count"] == 15  # same labels → buckets summed
    text = merged.to_prometheus()
    assert validate_exposition(text) > 0
    assert 'worker="w0"' in text and 'worker="w1"' in text


def test_merge_is_associative_with_self():
    reg = _worker_registry("w0", 7)
    once = merge_dumps([reg.dump()])
    twice = merge_dumps([reg.dump(), reg.dump()])
    packets = lambda r: r.snapshot()["repro_streaming_packets_total"]["series"][0]["value"]  # noqa: E731
    assert packets(once) == 7
    assert packets(twice) == 14


def test_merge_rejects_histogram_bucket_drift():
    a = MetricsRegistry(enabled=True)
    a.histogram("repro_h_seconds", "h", None, buckets=(0.1, 1.0)).observe(0.5)
    b = MetricsRegistry(enabled=True)
    b.histogram("repro_h_seconds", "h", None, buckets=(0.2, 2.0)).observe(0.5)
    merged = MetricsRegistry(enabled=True)
    merged.merge_dump(a.dump())
    with pytest.raises(ValueError, match="buckets"):
        merged.merge_dump(b.dump())


# --------------------------------------------------------------------------
# ShardWorker (driven directly, no process)
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def worker_state(testbed_tool):
    return ShardWorker("w9", testbed_tool, {"max_closed_incidents": 100})


def test_shard_worker_ingest_ack_and_drain(testbed_tool, testbed_trace):
    from repro.core.streaming import iter_packets
    from repro.traces.frame import as_frame

    state = ShardWorker("w3", testbed_tool, {})
    packets = list(iter_packets(as_frame(testbed_trace)))[:400]
    events = []
    for batch_id, start in enumerate(range(0, len(packets), 64)):
        ack = state.handle_ingest(
            protocol.shard_ingest("city", batch_id, packets[start:start + 64])
        )
        assert ack["type"] == "w_ack" and ack["deployment"] == "city"
        assert ack["accepted"] == len(packets[start:start + 64])
        events.extend(ack["events"])
    assert state.sessions["city"].n_packets == len(packets)

    # Session metrics carry BOTH deployment and worker labels — the fix
    # that keeps cluster rollups from collapsing colliding series.
    dump = state.registry.dump()
    labels = dump["repro_streaming_packets_total"]["series"][0]["labels"]
    assert labels == {
        "deployment": "city",
        "worker": "w3",
        "model_version": testbed_tool.model_version,
    }
    open_series = dump["repro_incidents_open"]["series"][0]["labels"]
    assert open_series["worker"] == "w3"

    drained = state.handle_drain(protocol.shard_drain("city"))
    assert drained["type"] == "w_drained"
    assert "city" not in state.sessions
    # finish() closes whatever was open; every event is a close event.
    assert all(e["kind"] == "close" for e in drained["events"])
    # Draining an unknown deployment is a harmless no-op answer.
    empty = state.handle_drain(protocol.shard_drain("ghost"))
    assert empty["events"] == [] and empty["counters"] == {}


def test_shard_worker_queries_and_bye(worker_state):
    state = worker_state
    state.session("a")
    state.session("b")
    metrics = state.handle_metrics_query(protocol.metrics_query(1))
    assert [s["deployment"] for s in metrics["shards"]] == ["a", "b"]
    incidents = state.handle_incidents_query(protocol.incidents_query(2))
    assert set(incidents["incidents"]) == {"a", "b"}
    only_a = state.handle_incidents_query(protocol.incidents_query(3, "a"))
    assert set(only_a["incidents"]) == {"a"}
    replies = list(state.drain_all())
    assert [r["type"] for r in replies] == ["w_drained", "w_drained", "w_bye"]
    assert replies[0]["deployment"] == "a"  # deterministic drain order
    assert replies[-1]["worker"] == "w9"
    assert "repro_streaming_packets_total" in replies[-1]["dump"]
