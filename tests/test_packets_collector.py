"""Unit tests for report packets and the sink collector."""

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS, PacketClass
from repro.metrics.collector import SinkCollector
from repro.metrics.packets import (
    C1Packet,
    C2Packet,
    C3Packet,
    merge_packets,
    snapshot_to_packets,
)


@pytest.fixture
def snapshot():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 100, size=NUM_METRICS)


def test_split_merge_roundtrip(snapshot):
    packets = snapshot_to_packets(3, 7, 123.0, snapshot)
    assert [p.PACKET_CLASS for p in packets] == [
        PacketClass.C1, PacketClass.C2, PacketClass.C3
    ]
    merged = merge_packets(packets)
    assert np.allclose(merged, snapshot)


def test_split_validates_shape():
    with pytest.raises(ValueError):
        snapshot_to_packets(1, 0, 0.0, np.zeros(10))


def test_packet_rejects_foreign_metrics():
    with pytest.raises(ValueError):
        C1Packet(node_id=1, epoch=0, generated_at=0.0,
                 values={"loop_counter": 1.0})


def test_merge_rejects_mixed_nodes(snapshot):
    a = snapshot_to_packets(1, 0, 0.0, snapshot)
    b = snapshot_to_packets(2, 0, 0.0, snapshot)
    with pytest.raises(ValueError):
        merge_packets([a[0], b[1], b[2]])


def test_merge_rejects_incomplete(snapshot):
    a = snapshot_to_packets(1, 0, 0.0, snapshot)
    with pytest.raises(ValueError):
        merge_packets(a[:2])


def test_merge_rejects_duplicates(snapshot):
    a = snapshot_to_packets(1, 0, 0.0, snapshot)
    with pytest.raises(ValueError):
        merge_packets([a[0], a[0], a[2]])


def test_collector_completes_epoch(snapshot):
    collector = SinkCollector()
    packets = snapshot_to_packets(5, 0, 10.0, snapshot)
    assert collector.deliver(packets[0], 11.0) is None
    assert collector.deliver(packets[1], 12.0) is None
    record = collector.deliver(packets[2], 13.0)
    assert record is not None
    assert record.node_id == 5
    assert record.received_at == 13.0
    assert np.allclose(record.values, snapshot)
    assert collector.total_snapshots() == 1
    assert collector.incomplete_epochs() == 0


def test_collector_ignores_duplicate_class(snapshot):
    collector = SinkCollector()
    packets = snapshot_to_packets(5, 0, 10.0, snapshot)
    collector.deliver(packets[0], 11.0)
    collector.deliver(packets[0], 11.5)  # duplicate C1
    collector.deliver(packets[1], 12.0)
    record = collector.deliver(packets[2], 13.0)
    assert record is not None


def test_collector_keeps_incomplete_epochs_separate(snapshot):
    collector = SinkCollector()
    e0 = snapshot_to_packets(5, 0, 10.0, snapshot)
    e1 = snapshot_to_packets(5, 1, 20.0, snapshot)
    collector.deliver(e0[0], 11.0)
    collector.deliver(e1[0], 21.0)
    assert collector.incomplete_epochs() == 2
    assert collector.total_snapshots() == 0


def test_collector_statistics(snapshot):
    collector = SinkCollector()
    for packet in snapshot_to_packets(5, 0, 10.0, snapshot):
        collector.deliver(packet, 11.0)
    assert collector.packets_received == 3
    assert collector.packets_by_class[PacketClass.C2] == 1
    assert len(collector.arrival_log) == 3


def test_timeline_orders_out_of_order_completions(snapshot):
    """Epoch 9 can complete before epoch 8's last packet arrives (heavy
    retransmission); the timeline must still come out epoch-ordered."""
    collector = SinkCollector()
    e8 = snapshot_to_packets(5, 8, 80.0, snapshot)
    e9 = snapshot_to_packets(5, 9, 90.0, snapshot)
    collector.deliver(e8[0], 81.0)
    collector.deliver(e8[1], 82.0)
    for packet in e9:
        collector.deliver(packet, 95.0)
    collector.deliver(e8[2], 99.0)  # late straggler completes epoch 8
    epochs = [s.epoch for s in collector.timelines[5].snapshots]
    assert epochs == [8, 9]


def test_timeline_matrix(snapshot):
    collector = SinkCollector()
    for epoch in range(3):
        for packet in snapshot_to_packets(5, epoch, 10.0 * epoch, snapshot):
            collector.deliver(packet, 10.0 * epoch + 1)
    matrix = collector.timelines[5].matrix()
    assert matrix.shape == (3, NUM_METRICS)
