"""Unit tests for the telemetry core: metrics primitives and tracing spans.

The ISSUE's contract points pinned here: histogram boundary values land
le-inclusively, empty histograms answer ``None`` to quantile queries,
counters promote past 2**63 instead of wrapping, spans nest and mark the
frame an exception crossed, and the Prometheus rendering of a registry
survives :func:`validate_exposition`.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    Span,
    Tracer,
    get_registry,
    get_tracer,
    set_registry,
    set_tracer,
    span,
    validate_exposition,
)


# ---------------------------------------------------------------------------
# Counter
# ---------------------------------------------------------------------------


def test_counter_counts():
    c = Counter("repro_test_total")
    assert c.value == 0
    c.inc()
    c.inc(41)
    assert c.value == 42
    assert c.sample() == {"labels": {}, "value": 42}


def test_counter_rejects_negative_increments():
    c = Counter("repro_test_total")
    with pytest.raises(ValueError, match="only go up"):
        c.inc(-1)
    assert c.value == 0


def test_counter_overflows_to_python_bigint():
    """Past the int64 range the counter must keep exact values, not wrap."""
    c = Counter("repro_test_total")
    c.inc(2**63 - 1)
    c.inc(1)
    c.inc(1)
    assert c.value == 2**63 + 1  # exact, and > any int64


# ---------------------------------------------------------------------------
# Gauge
# ---------------------------------------------------------------------------


def test_gauge_set_inc_dec():
    g = Gauge("repro_test_gauge")
    g.set(3.0)
    g.inc()
    g.dec(0.5)
    assert g.value == pytest.approx(3.5)


def test_gauge_callback_reads_through():
    g = Gauge("repro_test_gauge")
    state = {"n": 7}
    g.set_function(lambda: float(state["n"]))
    assert g.value == 7.0
    state["n"] = 9
    assert g.value == 9.0
    # a direct set() reverts to stored-value mode
    g.set(1.0)
    assert g.value == 1.0


def test_gauge_callback_failure_reads_nan_not_raises():
    g = Gauge("repro_test_gauge")

    def boom() -> float:
        raise RuntimeError("owner died")

    g.set_function(boom)
    assert math.isnan(g.value)  # a scrape must never crash on a dead gauge


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------


def test_histogram_boundary_values_are_le_inclusive():
    """A sample exactly on a bucket bound belongs to that bucket."""
    h = Histogram("repro_test_seconds", buckets=(1.0, 2.0, 5.0))
    for value in (1.0, 2.0, 5.0):
        h.observe(value)
    assert h.bucket_counts() == [1, 1, 1, 0]  # nothing spilled to +Inf
    h.observe(5.0000001)
    assert h.bucket_counts() == [1, 1, 1, 1]
    h.observe(0.0)  # below the first bound still lands in the first bucket
    assert h.bucket_counts() == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(13.0000001)


def test_histogram_empty_quantiles_are_none():
    h = Histogram("repro_test_seconds", buckets=(1.0, 2.0))
    assert h.quantile(0.5) is None
    assert h.quantile(0.0) is None
    assert h.quantile(1.0) is None
    sample = h.sample()
    assert sample["count"] == 0
    assert sample["p50"] is None and sample["p99"] is None


def test_histogram_quantile_range_checked():
    h = Histogram("repro_test_seconds", buckets=(1.0,))
    with pytest.raises(ValueError, match="quantile"):
        h.quantile(1.5)
    with pytest.raises(ValueError, match="quantile"):
        h.quantile(-0.1)


def test_histogram_quantile_interpolates_within_bucket():
    h = Histogram("repro_test_seconds", buckets=(1.0, 2.0, 4.0))
    for _ in range(10):
        h.observe(1.5)  # all ten samples in the (1, 2] bucket
    # Linear interpolation inside the bucket: p50 sits mid-bucket.
    assert h.quantile(0.5) == pytest.approx(1.5)
    assert h.quantile(1.0) == pytest.approx(2.0)


def test_histogram_overflow_bucket_reports_last_finite_bound():
    h = Histogram("repro_test_seconds", buckets=(1.0, 2.0))
    h.observe(100.0)
    assert h.quantile(0.5) == pytest.approx(2.0)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError, match="at least one"):
        Histogram("repro_test_seconds", buckets=())
    with pytest.raises(ValueError, match="strictly increase"):
        Histogram("repro_test_seconds", buckets=(1.0, 1.0))
    with pytest.raises(ValueError, match="finite"):
        Histogram("repro_test_seconds", buckets=(1.0, float("inf")))


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


def test_registry_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    a = reg.counter("repro_x_total", "help one")
    b = reg.counter("repro_x_total", "different help, same series")
    assert a is b
    # distinct labels -> distinct series under the same name
    c = reg.counter("repro_x_total", labels={"deployment": "lab"})
    assert c is not a
    a.inc()
    c.inc(2)
    assert (a.value, c.value) == (1, 2)


def test_registry_label_order_does_not_matter():
    reg = MetricsRegistry()
    a = reg.counter("repro_x_total", labels={"a": "1", "b": "2"})
    b = reg.counter("repro_x_total", labels={"b": "2", "a": "1"})
    assert a is b


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("repro_x_total")
    with pytest.raises(ValueError, match="already registered as counter"):
        reg.gauge("repro_x_total")
    with pytest.raises(ValueError, match="already registered as counter"):
        # even under different labels: one name, one kind
        reg.histogram("repro_x_total", labels={"deployment": "lab"})


def test_registry_rejects_invalid_names_and_labels():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="invalid metric name"):
        reg.counter("répro")
    with pytest.raises(ValueError, match="invalid label name"):
        reg.counter("repro_x_total", labels={"bad-label": "v"})


def test_disabled_registry_hands_out_shared_noops():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("repro_x_total")
    g = reg.gauge("repro_x_gauge")
    h = reg.histogram("repro_x_seconds")
    assert c is reg.counter("repro_other_total")  # shared singletons
    c.inc(1000)
    g.set(5.0)
    h.observe(1.0)
    assert c.value == 0
    assert g.value == 0.0
    assert h.count == 0
    assert reg.collect() == {}  # nothing was registered
    assert NULL_REGISTRY.enabled is False


def test_registry_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("repro_x_total", "things").inc(3)
    reg.histogram("repro_x_seconds", buckets=(1.0, 2.0)).observe(0.5)
    snap = reg.snapshot()
    assert snap["repro_x_total"]["kind"] == "counter"
    assert snap["repro_x_total"]["help"] == "things"
    assert snap["repro_x_total"]["series"] == [{"labels": {}, "value": 3}]
    hist = snap["repro_x_seconds"]["series"][0]
    assert hist["count"] == 1 and hist["sum"] == pytest.approx(0.5)
    # snapshot is JSON-ready by contract
    json.dumps(snap)


def test_registry_reset_drops_series():
    reg = MetricsRegistry()
    reg.counter("repro_x_total").inc()
    reg.reset()
    assert reg.collect() == {}
    assert reg.counter("repro_x_total").value == 0


def test_default_registry_swap():
    previous = set_registry(NULL_REGISTRY)
    try:
        assert get_registry() is NULL_REGISTRY
    finally:
        set_registry(previous)
    assert get_registry() is previous


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


def test_to_prometheus_validates_and_is_cumulative():
    reg = MetricsRegistry()
    reg.counter("repro_x_total", "things counted", {"deployment": "lab"}).inc(2)
    reg.gauge("repro_x_open", "open right now").set(1.0)
    h = reg.histogram("repro_x_seconds", "latency", buckets=(1.0, 2.0))
    h.observe(0.5)
    h.observe(1.5)
    h.observe(99.0)
    text = reg.to_prometheus()

    assert validate_exposition(text) > 0
    lines = text.splitlines()
    assert 'repro_x_total{deployment="lab"} 2' in lines
    assert "# TYPE repro_x_seconds histogram" in lines
    # le buckets are cumulative and end with +Inf == _count
    assert 'repro_x_seconds_bucket{le="1"} 1' in lines
    assert 'repro_x_seconds_bucket{le="2"} 2' in lines
    assert 'repro_x_seconds_bucket{le="+Inf"} 3' in lines
    assert "repro_x_seconds_count 3" in lines


def test_to_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter(
        "repro_x_total", labels={"deployment": 'we"ird\\name\nline'}
    ).inc()
    text = reg.to_prometheus()
    assert validate_exposition(text) == 1
    assert r'deployment="we\"ird\\name\nline"' in text


def test_validate_exposition_rejects_malformed():
    with pytest.raises(ValueError, match="no samples"):
        validate_exposition("")
    with pytest.raises(ValueError, match="malformed sample"):
        validate_exposition("this is not a metric line\n")
    with pytest.raises(ValueError, match="non-numeric"):
        validate_exposition("repro_x_total twelve\n")
    with pytest.raises(ValueError, match="unknown metric type"):
        validate_exposition("# TYPE repro_x_total countre\nrepro_x_total 1\n")
    with pytest.raises(ValueError, match="malformed label pair"):
        validate_exposition('repro_x_total{deployment=lab} 1\n')
    # special values are fine
    assert validate_exposition("repro_x_gauge NaN\nrepro_x_max +Inf\n") == 2


# ---------------------------------------------------------------------------
# Tracing: spans
# ---------------------------------------------------------------------------


def test_spans_nest_and_measure():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", kind="test") as outer:
        with tracer.span("inner") as inner:
            pass
        with tracer.span("inner") as second:
            pass
    assert [root.name for root in tracer.roots] == ["outer"]
    assert [c.name for c in outer.children] == ["inner", "inner"]
    assert outer.children == [inner, second]
    assert outer.wall_s is not None and outer.wall_s >= 0.0
    assert inner.wall_s is not None
    assert outer.self_s <= outer.wall_s
    assert outer.attrs == {"kind": "test"}
    assert tracer.current is None


def test_span_exception_marks_error_and_reraises():
    tracer = Tracer(enabled=True)
    with pytest.raises(KeyError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise KeyError("gone")
    outer = tracer.roots[0]
    inner = outer.children[0]
    assert inner.status == "error"
    assert inner.error == "KeyError: 'gone'"
    assert outer.status == "error"  # the exception crossed both frames
    assert inner.wall_s is not None  # still finished/timed
    # the stack unwound cleanly: new spans root correctly
    with tracer.span("after"):
        pass
    assert [r.name for r in tracer.roots] == ["outer", "after"]


def test_disabled_tracer_times_but_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("quiet") as sp:
        pass
    assert sp.wall_s is not None  # call sites rely on the measurement
    assert tracer.roots == []
    assert tracer.current is None


def test_span_dict_roundtrip():
    tracer = Tracer(enabled=True)
    with pytest.raises(ValueError):
        with tracer.span("outer", rank=8):
            with tracer.span("inner"):
                raise ValueError("x")
    original = tracer.roots[0]
    clone = Span.from_dict(json.loads(json.dumps(original.to_dict())))
    assert [s.name for s in clone.walk()] == [s.name for s in original.walk()]
    assert clone.attrs == {"rank": 8}
    assert clone.children[0].status == "error"
    assert clone.wall_s == pytest.approx(original.wall_s)


def test_tracer_attach_grafts_under_open_span():
    worker = Tracer(enabled=True)
    with worker.span("runner.job"):
        pass
    shipped = worker.roots[0].to_dict()

    parent = Tracer(enabled=True)
    with parent.span("vn2 train"):
        parent.attach(shipped)
    assert [c.name for c in parent.roots[0].children] == ["runner.job"]
    # disabled tracers ignore attach
    assert Tracer(enabled=False).attach(shipped) is None


def test_to_jsonl_links_parents():
    tracer = Tracer(enabled=True)
    with tracer.span("a"):
        with tracer.span("b"):
            pass
        with tracer.span("c"):
            pass
    records = [json.loads(line) for line in tracer.to_jsonl().splitlines()]
    by_name = {r["name"]: r for r in records}
    assert by_name["a"]["parent_id"] is None and by_name["a"]["depth"] == 0
    assert by_name["b"]["parent_id"] == by_name["a"]["span_id"]
    assert by_name["c"]["parent_id"] == by_name["a"]["span_id"]
    assert by_name["b"]["depth"] == 1


def test_render_and_top_table_cover_the_tree():
    tracer = Tracer(enabled=True)
    with tracer.span("fit"):
        with tracer.span("fit.nmf", rank=8):
            pass
    rendered = tracer.render()
    assert "fit" in rendered and "fit.nmf" in rendered and "rank=8" in rendered
    table = tracer.top_table()
    assert "fit.nmf" in table
    assert Tracer(enabled=True).top_table() == "(no spans recorded)"


def test_set_tracer_swaps_the_global():
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        assert get_tracer() is tracer
        with span("swapped"):
            pass
    finally:
        set_tracer(previous)
    assert [r.name for r in tracer.roots] == ["swapped"]
    assert get_tracer() is previous


def test_module_level_span_always_times():
    # the process-default tracer is disabled under pytest: no recording,
    # but the measurement contract must hold (timings_ depends on it).
    assert get_tracer().enabled is False
    with span("unrecorded") as sp:
        pass
    assert sp.wall_s is not None and sp.wall_s >= 0.0


def test_default_buckets_strictly_increase():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
