"""Unit tests for the trickle beacon timer."""

import numpy as np
import pytest

from repro.simnet.ctp.beacons import TrickleTimer


def test_interval_doubles_until_max():
    timer = TrickleTimer(min_interval_s=10.0, max_interval_s=80.0)
    delays = [timer.next_delay() for _ in range(5)]
    assert delays == [10.0, 20.0, 40.0, 80.0, 80.0]


def test_reset_snaps_back():
    timer = TrickleTimer(min_interval_s=10.0, max_interval_s=80.0)
    for _ in range(4):
        timer.next_delay()
    timer.reset()
    assert timer.next_delay() == 10.0


def test_jitter_within_bounds():
    timer = TrickleTimer(
        min_interval_s=10.0, max_interval_s=10.0, rng=np.random.default_rng(0)
    )
    for _ in range(100):
        delay = timer.next_delay()
        assert 7.5 <= delay <= 12.5


def test_invalid_intervals_rejected():
    with pytest.raises(ValueError):
        TrickleTimer(min_interval_s=0.0, max_interval_s=10.0)
    with pytest.raises(ValueError):
        TrickleTimer(min_interval_s=20.0, max_interval_s=10.0)


def test_current_interval_preview():
    timer = TrickleTimer(min_interval_s=5.0, max_interval_s=40.0)
    assert timer.current_interval == 5.0
    timer.next_delay()
    assert timer.current_interval == 10.0
