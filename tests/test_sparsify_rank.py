"""Tests for Algorithm 2 (sparsification) and rank selection, w/ hypothesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.nmf import nmf
from repro.core.rank_selection import RankPoint, RankSweepResult, choose_rank, rank_sweep
from repro.core.sparsify import sparsify_weights


def weight_matrices():
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 15), st.integers(1, 8)),
        elements=st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False,
                           width=64),
    )


@given(weight_matrices(), st.floats(0.1, 1.0))
@settings(max_examples=60, deadline=None)
def test_retention_invariant(W, retention):
    result = sparsify_weights(W, retention=retention)
    total = np.abs(W).sum()
    if total > 0:
        assert result.retained_mass >= retention - 1e-9
    # zeroed entries only; kept entries unchanged
    assert np.all((result.W_sparse == W) | (result.W_sparse == 0.0))
    assert result.W_sparse.shape == W.shape


@given(weight_matrices())
@settings(max_examples=30, deadline=None)
def test_greedy_keeps_largest(W):
    result = sparsify_weights(W, retention=0.5)
    if result.mask.all() or not result.mask.any():
        return
    kept_min = W[result.mask].min()
    dropped_max = W[~result.mask].max()
    assert kept_min >= dropped_max - 1e-12


@given(weight_matrices())
@settings(max_examples=30, deadline=None)
def test_row_normalized_covers_each_row(W):
    result = sparsify_weights(W, retention=0.9, row_normalize=True)
    for i in range(W.shape[0]):
        row_total = np.abs(W[i]).sum()
        if row_total > 0:
            kept = np.abs(result.W_sparse[i]).sum()
            assert kept >= 0.9 * row_total - 1e-9


def test_retention_one_keeps_everything():
    W = np.random.default_rng(0).uniform(0, 1, size=(5, 4))
    result = sparsify_weights(W, retention=1.0)
    assert np.allclose(result.W_sparse, W)
    assert result.kept_fraction == 1.0


def test_lower_retention_keeps_fewer():
    W = np.random.default_rng(0).uniform(0, 1, size=(20, 10))
    half = sparsify_weights(W, retention=0.5).kept_fraction
    most = sparsify_weights(W, retention=0.95).kept_fraction
    assert half < most


def test_sparsify_validation():
    with pytest.raises(ValueError):
        sparsify_weights(np.ones((2, 2)), retention=0.0)
    with pytest.raises(ValueError):
        sparsify_weights(np.array([[-1.0, 1.0]]))
    with pytest.raises(ValueError):
        sparsify_weights(np.ones(3))


def test_all_zero_matrix():
    result = sparsify_weights(np.zeros((3, 3)))
    assert result.retained_mass == 1.0
    assert not result.mask.any()


# ---------------------------------------------------------------------
# rank selection
# ---------------------------------------------------------------------


def test_rank_sweep_curves():
    rng = np.random.default_rng(0)
    W_true = rng.uniform(0, 1, size=(60, 5))
    V = W_true @ rng.uniform(0, 1, size=(5, 20)) + rng.uniform(0, 0.05, (60, 20))
    sweep = rank_sweep(V, ranks=[2, 4, 6, 8, 10], n_iter=150)
    ranks, dense, sparse = sweep.as_arrays()
    # dense accuracy improves (error falls) with rank
    assert dense[0] > dense[-1]
    # sparse curve sits above dense everywhere
    assert np.all(sparse >= dense - 1e-9)


def test_rank_sweep_skips_invalid_ranks():
    V = np.random.default_rng(0).uniform(0, 1, size=(6, 5))
    sweep = rank_sweep(V, ranks=[2, 50], n_iter=20)
    assert sweep.ranks == [2]


def test_rank_sweep_all_invalid_raises():
    V = np.random.default_rng(0).uniform(0, 1, size=(4, 4))
    with pytest.raises(ValueError):
        rank_sweep(V, ranks=[10, 20])


def test_choose_rank_finds_elbow():
    # construct a sweep with an obvious elbow at r=10
    points = []
    for r, err in [(5, 10.0), (10, 3.0), (15, 2.6), (20, 2.3), (25, 2.1)]:
        points.append(RankPoint(r=r, accuracy_original=err,
                                accuracy_sparse=err + 0.4, n_iter=10))
    sweep = RankSweepResult(points=points, data_norm=20.0)
    assert choose_rank(sweep) == 10


def test_choose_rank_single_point():
    sweep = RankSweepResult(
        points=[RankPoint(r=7, accuracy_original=1.0, accuracy_sparse=1.1,
                          n_iter=5)],
        data_norm=5.0,
    )
    assert choose_rank(sweep) == 7


def test_choose_rank_prefers_smaller_when_gap_blows_up():
    # elbow-ish at 10, but the sparse gap explodes after it
    points = [
        RankPoint(r=5, accuracy_original=6.0, accuracy_sparse=6.3, n_iter=1),
        RankPoint(r=10, accuracy_original=3.0, accuracy_sparse=5.5, n_iter=1),
        RankPoint(r=15, accuracy_original=2.8, accuracy_sparse=6.0, n_iter=1),
    ]
    sweep = RankSweepResult(points=points, data_norm=10.0)
    chosen = choose_rank(sweep)
    assert chosen in (5, 10)
