"""Golden-trace regression anchor.

``tests/data/golden_trace.jsonl`` is a committed trace from a known
simulator configuration (4x4 grid, seed 12345, one loop pulse + one
reboot).  These tests pin two things across future changes:

1. the trace *format* stays loadable (schema compatibility), and
2. the *pipeline behaviour* on a fixed input stays sane — states build,
   exceptions are found, the loop/reboot signatures remain diagnosable.

If the simulator's random streams or protocol logic change, regenerate
the file with the snippet in its header metadata and review the diff —
the point is that such changes become *visible*, not forbidden.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.exceptions import detect_exceptions
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states
from repro.metrics.catalog import METRIC_INDEX
from repro.traces.io import load_trace_jsonl

GOLDEN = Path(__file__).resolve().parent / "data" / "golden_trace.jsonl"


@pytest.fixture(scope="module")
def golden():
    return load_trace_jsonl(GOLDEN)


def test_golden_loads_with_expected_shape(golden):
    assert len(golden) == 217
    assert golden.delivery_ratio() == pytest.approx(0.9661, abs=1e-3)
    assert len(golden.node_ids) == 15
    kinds = {g.kind for g in golden.ground_truth}
    assert kinds == {"routing_loop", "node_reboot"}


def test_golden_states_and_exceptions(golden):
    states = build_states(golden)
    assert len(states) == 217 - len(golden.node_ids)
    exceptions = detect_exceptions(states)
    assert 2 <= len(exceptions) <= len(states) // 2


def test_golden_reboot_state_present(golden):
    """Node 5's reboot at t=1000 must appear as a counter reset."""
    states = build_states(golden).for_node(5)
    tx = METRIC_INDEX["transmit_counter"]
    resets = [
        i for i, p in enumerate(states.provenance)
        if p.time_from <= 1000.0 <= p.time_to
        and states.values[i][tx] < 0
    ]
    assert resets


def test_golden_loop_state_present(golden):
    """The loop pulse must inflate the loop nodes' counters."""
    states = build_states(golden)
    loop_idx = METRIC_INDEX["loop_counter"]
    inflated = [
        i for i, p in enumerate(states.provenance)
        if p.node_id in (10, 11) and states.values[i][loop_idx] > 5
    ]
    assert inflated


def test_golden_end_to_end_diagnosis(golden):
    tool = VN2(VN2Config(rank=6)).fit(golden)
    states = build_states(golden)
    loop_idx = METRIC_INDEX["loop_counter"]
    candidates = [
        i for i, p in enumerate(states.provenance)
        if p.node_id in (10, 11) and states.values[i][loop_idx] > 5
    ]
    report = tool.diagnose(states.values[candidates[0]])
    assert report.ranked, "loop state must be attributed to something"
    hazards = {
        hazard
        for cause in report.ranked[:3]
        for hazard, _s in cause.label.hazards[:3]
    }
    assert hazards & {"routing_loop", "duplicate_storm", "queue_overflow",
                      "contention"}
