"""Tests for incident aggregation (combination diagnosis)."""

import numpy as np
import pytest

from repro.core.incidents import (
    Incident,
    IncidentAggregator,
    Observation,
    incidents_from_trace,
)
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states


@pytest.fixture(scope="module")
def multicause_tool(multicause_trace):
    states = build_states(multicause_trace)
    return VN2(VN2Config(rank=12)).fit_states(states)


def make_obs(node, t0, t1, hazard="routing_loop", strength=0.5):
    return Observation(
        node_id=node, time_from=t0, time_to=t1, cause_index=0,
        hazard=hazard, strength=strength,
    )


def make_aggregator(tool, positions=None, **kwargs):
    return IncidentAggregator(tool, positions=positions, **kwargs)


# ----------------------------------------------------------------------
# clustering unit behaviour (uses a fitted tool only for construction)
# ----------------------------------------------------------------------


def test_temporally_close_observations_merge(multicause_tool):
    agg = make_aggregator(multicause_tool, time_gap_s=100.0)
    obs = [
        make_obs(1, 0.0, 50.0),
        make_obs(2, 60.0, 120.0),
        make_obs(3, 150.0, 200.0),
    ]
    incidents = agg.cluster(obs)
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.node_ids == (1, 2, 3)
    assert incident.start == 0.0
    assert incident.end == 200.0
    assert incident.n_observations == 3
    assert incident.peak_strength == pytest.approx(0.5)


def test_large_time_gap_splits_incidents(multicause_tool):
    agg = make_aggregator(multicause_tool, time_gap_s=100.0)
    obs = [make_obs(1, 0.0, 50.0), make_obs(2, 500.0, 550.0)]
    incidents = agg.cluster(obs)
    assert len(incidents) == 2


def test_different_hazards_never_merge(multicause_tool):
    agg = make_aggregator(multicause_tool, time_gap_s=1000.0)
    obs = [
        make_obs(1, 0.0, 50.0, hazard="routing_loop"),
        make_obs(1, 10.0, 60.0, hazard="contention"),
    ]
    incidents = agg.cluster(sorted(obs, key=lambda o: (o.hazard, o.time_from)))
    assert len(incidents) == 2
    assert {i.hazard for i in incidents} == {"routing_loop", "contention"}


def test_spatial_radius_splits_far_nodes(multicause_tool):
    positions = {1: (0.0, 0.0), 2: (1000.0, 0.0)}
    agg = make_aggregator(
        multicause_tool, positions=positions, time_gap_s=1000.0, radius_m=50.0
    )
    obs = [make_obs(1, 0.0, 50.0), make_obs(2, 10.0, 60.0)]
    incidents = agg.cluster(obs)
    assert len(incidents) == 2


def test_spatially_close_nodes_merge(multicause_tool):
    positions = {1: (0.0, 0.0), 2: (10.0, 0.0)}
    agg = make_aggregator(
        multicause_tool, positions=positions, time_gap_s=1000.0, radius_m=50.0
    )
    obs = [make_obs(1, 0.0, 50.0), make_obs(2, 10.0, 60.0)]
    assert len(agg.cluster(obs)) == 1


def test_incident_describe_and_overlap(multicause_tool):
    incident = Incident(
        hazard="routing_loop", node_ids=(1, 2), start=10.0, end=20.0,
        peak_strength=0.7, total_strength=1.2, n_observations=3,
    )
    assert "routing_loop" in incident.describe()
    assert incident.overlaps(15.0, 30.0)
    assert not incident.overlaps(20.0, 30.0)


def test_empty_states_no_incidents(multicause_tool):
    from repro.core.states import StateMatrix
    from repro.metrics.catalog import NUM_METRICS

    agg = make_aggregator(multicause_tool)
    empty = StateMatrix(np.zeros((0, NUM_METRICS)), [])
    assert agg.extract(empty) == []


# ----------------------------------------------------------------------
# end to end on the multi-cause trace
# ----------------------------------------------------------------------


def test_incidents_recover_the_fault_window(multicause_tool, multicause_trace):
    incidents = incidents_from_trace(multicause_tool, multicause_trace)
    assert incidents, "expected at least one incident"
    window = multicause_trace.metadata["window"]
    # the strongest incidents overlap the injected fault window
    top = incidents[:3]
    assert any(inc.overlaps(window[0], window[1] + 600.0) for inc in top)
    # and the fault window produced far fewer incidents than observations
    agg = IncidentAggregator(multicause_tool)
    n_obs = len(agg.observations(build_states(multicause_trace)))
    assert len(incidents) < n_obs / 3


def test_incident_nodes_are_plausible(multicause_tool, multicause_trace):
    incidents = incidents_from_trace(multicause_tool, multicause_trace)
    window = multicause_trace.metadata["window"]
    in_window = [
        inc for inc in incidents if inc.overlaps(window[0], window[1] + 600.0)
    ]
    assert in_window
    # loop nodes 21/22 and/or burst nodes 28/29/34 appear in the incidents
    involved = set()
    for inc in in_window:
        involved.update(inc.node_ids)
    assert involved & {21, 22, 28, 29, 34}
