"""Arrival-order tie-breaking of :func:`iter_packets`.

The streaming engine's bit-identity guarantee assumes one canonical
arrival order for frame replays: sorted by ``generated_at``, ties broken
by node id, remaining ties by epoch.  A frame is stored node-major — the
exact opposite major order — so these tests craft deliberate ties and
pin the lexsort down.  Iterables, by contrast, must pass through in the
order given (a tailed JSONL file is already in arrival order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import iter_packets
from repro.metrics.catalog import NUM_METRICS
from repro.traces.frame import TraceFrame
from repro.traces.records import SnapshotRow


def _frame(rows):
    """Build a frame from (node_id, epoch, generated_at) triples.

    Each row's metric vector is filled with its *input* index so a test
    can recover which original row came out where.
    """
    node_ids = [r[0] for r in rows]
    epochs = [r[1] for r in rows]
    generated = [r[2] for r in rows]
    values = np.zeros((len(rows), NUM_METRICS))
    values[:, 0] = np.arange(len(rows))
    return TraceFrame(
        node_ids=node_ids,
        epochs=epochs,
        generated_at=generated,
        received_at=generated,
        values=values,
    )


def _keys(frame):
    return [(p[2], p[0], p[1]) for p in iter_packets(frame)]


def test_generated_at_dominates_node_major_storage():
    # Node-major storage order would yield node 1 entirely before node 2;
    # arrival order must interleave them by timestamp instead.
    frame = _frame([
        (1, 0, 100.0), (1, 1, 300.0),
        (2, 0, 200.0), (2, 1, 400.0),
    ])
    assert _keys(frame) == [
        (100.0, 1, 0), (200.0, 2, 0), (300.0, 1, 1), (400.0, 2, 1),
    ]


def test_equal_generated_at_breaks_tie_by_node_id():
    frame = _frame([
        (9, 0, 100.0), (2, 0, 100.0), (5, 0, 100.0),
    ])
    assert _keys(frame) == [(100.0, 2, 0), (100.0, 5, 0), (100.0, 9, 0)]


def test_equal_generated_at_and_node_breaks_tie_by_epoch():
    # Same node, same timestamp (a node flushing a backlog in one burst):
    # epoch is the final tie-breaker.
    frame = _frame([
        (3, 7, 100.0), (3, 2, 100.0), (3, 5, 100.0),
    ])
    assert _keys(frame) == [(100.0, 3, 2), (100.0, 3, 5), (100.0, 3, 7)]


def test_all_three_levels_at_once():
    rows = [
        (2, 1, 200.0),   # later timestamp: last
        (4, 0, 100.0),   # t=100, node 4
        (1, 6, 100.0),   # t=100, node 1, epoch 6
        (1, 3, 100.0),   # t=100, node 1, epoch 3 -> first
        (4, 0, 50.0),    # earliest timestamp of all
    ]
    frame = _frame(rows)
    assert _keys(frame) == [
        (50.0, 4, 0),
        (100.0, 1, 3),
        (100.0, 1, 6),
        (100.0, 4, 0),
        (200.0, 2, 1),
    ]


def test_packet_values_follow_their_row():
    rows = [(2, 0, 100.0), (1, 0, 100.0)]
    frame = _frame(rows)
    packets = list(iter_packets(frame))
    # Row index travels in values[0]; node 1 (input row 1) must be first.
    assert [int(p[3][0]) for p in packets] == [1, 0]
    assert [p[0] for p in packets] == [1, 2]


def test_iterables_pass_through_untouched():
    # An explicit packet stream is trusted as-is, even when unsorted.
    rows = [
        SnapshotRow(node_id=5, epoch=1, generated_at=900.0,
                    received_at=900.0, values=np.zeros(NUM_METRICS)),
        (2, 0, 100.0, np.ones(NUM_METRICS)),
    ]
    packets = list(iter_packets(rows))
    assert [(p[0], p[1], p[2]) for p in packets] == [
        (5, 1, 900.0), (2, 0, 100.0),
    ]
    assert packets[1][3].dtype == float


def test_frame_replay_matches_manual_lexsort(testbed_trace):
    from repro.traces.frame import as_frame

    frame = as_frame(testbed_trace)
    order = np.lexsort((frame.epochs, frame.node_ids, frame.generated_at))
    expected = [
        (float(frame.generated_at[i]), int(frame.node_ids[i]),
         int(frame.epochs[i]))
        for i in order
    ]
    assert _keys(frame) == expected
    # ... and the sort key really is non-decreasing.
    assert expected == sorted(expected)


def test_tie_break_changes_diagnosis_input_order_not_content():
    # Two orderings of the same rows produce identical packet multisets.
    rows = [(1, 0, 100.0), (2, 0, 100.0), (1, 1, 100.0)]
    a = list(iter_packets(_frame(rows)))
    b = list(iter_packets(_frame(list(reversed(rows)))))
    assert [(p[0], p[1], p[2]) for p in a] == [(p[0], p[1], p[2]) for p in b]


@pytest.mark.parametrize("n", [0, 1])
def test_degenerate_frames(n):
    rows = [(1, 0, 100.0)][:n]
    assert len(list(iter_packets(_frame(rows)))) == n
