"""Seed robustness: headline claims hold across simulation seeds.

These run extra full testbed simulations (~20 s each), so they live in
their own module; the properties checked are the ones EXPERIMENTS.md
declares robust (not the seed-dependent ordering claims).
"""

import pytest

from repro.analysis.testbed_experiments import exp_fig5hi
from repro.traces.testbed import TestbedScenario, generate_testbed_trace


@pytest.mark.parametrize("seed", [21, 33])
def test_train_test_transfer_across_seeds(seed):
    trace = generate_testbed_trace(TestbedScenario.EXPANSIVE, seed=seed)
    result = exp_fig5hi(TestbedScenario.EXPANSIVE, seed=seed, trace=trace)
    assert result.profile_correlation > 0.9


def test_baseline_comparison_across_seed():
    from repro.analysis.baseline_comparison import (
        build_multicause_trace,
        exp_baselines,
    )

    trace = build_multicause_trace(seed=35)
    result = exp_baselines(trace)
    vn2 = result.score_of("VN2")
    sympathy = result.score_of("Sympathy")
    assert vn2.attribution_recall > sympathy.attribution_recall
