"""Tests for ground-truth diagnosis scoring."""

import numpy as np
import pytest

from repro.analysis.evaluation import (
    HAZARD_TO_FAULTS,
    EvaluationResult,
    KindScore,
    evaluate_diagnoses,
    threshold_sweep,
    truth_kinds_for_state,
)
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import StateProvenance
from repro.traces.records import GroundTruth, Trace


@pytest.fixture(scope="module")
def fitted(multicause_trace):
    return VN2(VN2Config(rank=12)).fit(multicause_trace)


def test_kind_score_arithmetic():
    score = KindScore("loop", true_positives=3, false_positives=1,
                      false_negatives=2)
    assert score.precision == pytest.approx(0.75)
    assert score.recall == pytest.approx(0.6)
    assert score.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)
    assert score.support == 5


def test_kind_score_degenerate():
    score = KindScore("x", 0, 0, 0)
    assert score.precision == 0.0
    assert score.recall == 0.0
    assert score.f1 == 0.0


def test_truth_kinds_window_and_node_scoping():
    trace = Trace(rows=[], ground_truth=[
        GroundTruth("routing_loop", (5, 6), 100.0, 200.0),
        GroundTruth("interference", (7,), 100.0, 200.0),
    ])
    inside = StateProvenance(5, 0, 1, 150.0, 160.0)
    outside_time = StateProvenance(5, 0, 1, 300.0, 310.0)
    other_node = StateProvenance(9, 0, 1, 150.0, 160.0)
    assert truth_kinds_for_state(inside, trace) == {"routing_loop"}
    assert truth_kinds_for_state(outside_time, trace) == set()
    assert truth_kinds_for_state(other_node, trace) == set()


def test_hazard_mapping_covers_all_catalog_hazards():
    from repro.metrics.catalog import HAZARDS

    mappable = set(HAZARD_TO_FAULTS)
    catalog = {h.name for h in HAZARDS}
    # every mapped hazard exists in the catalog (or is a synthetic alias)
    assert mappable - catalog <= set()


def test_evaluation_on_multicause_trace(fitted, multicause_trace):
    result = evaluate_diagnoses(fitted, multicause_trace, min_strength=0.2)
    assert result.n_states_scored > 10
    kinds = {s.kind for s in result.per_kind}
    assert "routing_loop" in kinds or "interference" in kinds
    assert 0.0 <= result.micro_precision <= 1.0
    assert result.micro_recall > 0.3  # faults are actually recovered
    assert "micro:" in result.to_text()


def test_threshold_sweep_tradeoff(fitted, multicause_trace):
    points = threshold_sweep(fitted, multicause_trace,
                             thresholds=(0.05, 0.3, 0.6))
    thresholds = [t for t, _p, _r in points]
    recalls = [r for _t, _p, r in points]
    assert thresholds == sorted(thresholds)
    # recall falls (or stays) as the threshold rises
    assert recalls[0] >= recalls[-1]


def test_empty_trace_rejected(fitted):
    with pytest.raises(ValueError):
        evaluate_diagnoses(fitted, Trace(rows=[]))
