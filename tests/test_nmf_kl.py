"""Tests for the KL-divergence NMF variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.nmf import kl_divergence, nmf


def nonneg_matrices():
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(3, 12), st.integers(3, 8)),
        elements=st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False,
                           width=64),
    )


@given(nonneg_matrices(), st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_kl_loss_monotone_and_factors_nonnegative(V, r):
    result = nmf(V, r, n_iter=40, tol=0.0, objective="kl", init="nndsvd")
    assert np.all(result.W >= 0)
    assert np.all(result.Psi >= 0)
    losses = result.loss_history
    scale = max(abs(losses[0]), 1.0)
    for a, b in zip(losses, losses[1:]):
        assert b <= a + 1e-6 * scale


def test_kl_divergence_zero_for_exact_fit():
    rng = np.random.default_rng(0)
    W = rng.uniform(0.1, 1, size=(6, 2))
    Psi = rng.uniform(0.1, 1, size=(2, 5))
    V = W @ Psi
    assert kl_divergence(V, W, Psi) == pytest.approx(0.0, abs=1e-6)


def test_kl_divergence_positive_for_mismatch():
    V = np.ones((3, 3))
    W = np.full((3, 1), 2.0)
    Psi = np.full((1, 3), 2.0)  # approximation 4, truth 1
    assert kl_divergence(V, W, Psi) > 1.0


def test_kl_recovers_planted_factors():
    rng = np.random.default_rng(1)
    V = rng.uniform(0.1, 1, size=(30, 3)) @ rng.uniform(0.1, 1, size=(3, 12))
    result = nmf(V, 3, n_iter=800, tol=1e-10, objective="kl", init="nndsvd")
    assert kl_divergence(V, result.W, result.Psi) < 0.01 * V.sum()


def test_unknown_objective_rejected():
    with pytest.raises(ValueError):
        nmf(np.ones((3, 3)), 1, objective="hellinger")


def test_kl_handles_zero_entries():
    rng = np.random.default_rng(2)
    V = rng.uniform(0, 1, size=(10, 6))
    V[V < 0.5] = 0.0  # half the entries exactly zero
    result = nmf(V, 2, n_iter=50, objective="kl")
    assert np.all(np.isfinite(result.W))
    assert np.all(np.isfinite(result.Psi))
    assert np.isfinite(result.loss)


def test_objectives_give_different_factorizations():
    rng = np.random.default_rng(3)
    V = rng.uniform(0, 1, size=(20, 8))
    frob = nmf(V, 3, n_iter=100, init="nndsvd", objective="frobenius")
    kl = nmf(V, 3, n_iter=100, init="nndsvd", objective="kl")
    assert not np.allclose(frob.Psi, kl.Psi, atol=1e-3)
