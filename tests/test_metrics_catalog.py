"""Unit tests for the metric catalog and hazard knowledge base."""

import pytest

from repro.metrics.catalog import (
    HAZARDS,
    METRIC_INDEX,
    METRIC_NAMES,
    METRICS,
    NUM_METRICS,
    Hazard,
    MetricKind,
    PacketClass,
    hazards_for_metric,
    metrics_in_packet,
)


def test_exactly_43_metrics():
    assert NUM_METRICS == 43
    assert len(METRIC_NAMES) == 43
    assert len(set(METRIC_NAMES)) == 43


def test_packet_split_7_21_15():
    assert len(metrics_in_packet(PacketClass.C1)) == 7
    assert len(metrics_in_packet(PacketClass.C2)) == 21
    assert len(metrics_in_packet(PacketClass.C3)) == 15


def test_metric_index_consistent():
    for i, name in enumerate(METRIC_NAMES):
        assert METRIC_INDEX[name] == i


def test_counters_are_c3_gauges_elsewhere():
    for metric in METRICS:
        if metric.kind is MetricKind.COUNTER:
            assert metric.packet is PacketClass.C3
        else:
            assert metric.packet in (PacketClass.C1, PacketClass.C2)


def test_paper_table1_metrics_present():
    # the named metrics of the paper's Table I
    for name in (
        "temperature",
        "voltage",
        "neighbor_num",
        "overflow_drop_counter",
        "noack_retransmit_counter",
        "parent_change_counter",
        "loop_counter",
        "drop_packet_counter",
        "duplicate_counter",
    ):
        assert name in METRIC_INDEX


def test_hazard_triggers_are_valid_metrics():
    for hazard in HAZARDS:
        for trigger in hazard.triggers:
            assert trigger in METRIC_INDEX, (hazard.name, trigger)


def test_hazard_directions_match_triggers():
    for hazard in HAZARDS:
        if hazard.directions:
            assert len(hazard.directions) == len(hazard.triggers)
        for i in range(len(hazard.triggers)):
            assert hazard.direction_of(i) in (-1, 0, 1)


def test_hazard_direction_validation():
    with pytest.raises(ValueError):
        Hazard(name="bad", triggers=("voltage",), event="", impact="",
               directions=(1, -1))


def test_hazards_for_metric():
    hazards = hazards_for_metric("loop_counter")
    assert any(h.name == "routing_loop" for h in hazards)
    with pytest.raises(KeyError):
        hazards_for_metric("not_a_metric")


def test_hazard_names_unique():
    names = [h.name for h in HAZARDS]
    assert len(names) == len(set(names))
