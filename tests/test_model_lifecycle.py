"""The model lifecycle core: versioning, integrity, online updates.

``model_version`` is a content hash of the fitted payload — identical
artifacts hash alike, any change to factors, normalizer or config hashes
differently, and a save/load roundtrip preserves it.  Tampering with a
saved payload must fail loudly (:class:`ModelIntegrityError`); saves
from before the hash existed still load.  On top of that sits
:class:`OnlineVN2Updater` — clone-and-refit absorbs with a drift-score
trigger — and :func:`merge_state_matrices`, the per-shard batch merge
the sink's :class:`~repro.service.models.ModelManager` refits from.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.lifecycle import OnlineVN2Updater, incremental_refit
from repro.core.pipeline import (
    VN2,
    ModelIntegrityError,
    VN2Config,
    _model_fingerprint,
)
from repro.core.states import build_states
from repro.service.models import merge_state_matrices


@pytest.fixture(scope="module")
def split_trace(testbed_trace):
    warmup = float(testbed_trace.metadata["warmup_s"])
    duration = float(testbed_trace.metadata["duration_s"])
    half = warmup + duration / 2.0
    return testbed_trace.window(0.0, half), testbed_trace.window(
        half, warmup + duration
    )


@pytest.fixture(scope="module")
def fitted(split_trace):
    first, _ = split_trace
    return VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)


# ----------------------------------------------------------------------
# model_version: the content hash
# ----------------------------------------------------------------------


def test_model_version_shape_and_stability(fitted):
    version = fitted.model_version
    assert len(version) == 12
    int(version, 16)  # twelve hex characters
    assert fitted.model_version == version  # cached, stable


def test_identical_fits_hash_identically(split_trace):
    first, _ = split_trace
    a = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)
    b = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)
    assert a.model_version == b.model_version


def test_config_change_changes_version(split_trace, fitted):
    first, _ = split_trace
    other = VN2(
        VN2Config(rank=8, filter_exceptions=False, nmf_iterations=140)
    ).fit(first)
    assert other.model_version != fitted.model_version


def test_version_survives_save_load(fitted, tmp_path):
    path = tmp_path / "model.npz"
    fitted.save(path)
    sidecar = json.loads((tmp_path / "model.json").read_text())
    assert sidecar["model_version"] == fitted.model_version
    assert VN2.load(path).model_version == fitted.model_version


def test_refit_invalidates_version(split_trace):
    first, second = split_trace
    tool = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)
    before = tool.model_version
    tool.refit_with(build_states(second))
    assert tool.model_version != before


def test_unfitted_model_has_no_version():
    with pytest.raises(RuntimeError):
        VN2().model_version


# ----------------------------------------------------------------------
# integrity on load
# ----------------------------------------------------------------------


def test_tampered_payload_fails_loudly(fitted, tmp_path):
    path = tmp_path / "model.npz"
    fitted.save(path)
    arrays = dict(np.load(path))
    arrays["W_sparse"] = arrays["W_sparse"] * 1.5  # silent corruption
    np.savez_compressed(path, **arrays)
    with pytest.raises(ModelIntegrityError, match="model_version"):
        VN2.load(path)


def test_tampered_sidecar_fails_loudly(fitted, tmp_path):
    path = tmp_path / "model.npz"
    fitted.save(path)
    sidecar_path = tmp_path / "model.json"
    sidecar = json.loads(sidecar_path.read_text())
    sidecar["config"]["retention"] = 0.5
    sidecar_path.write_text(json.dumps(sidecar))
    with pytest.raises(ModelIntegrityError):
        VN2.load(path)


def test_legacy_save_without_version_loads_unchecked(fitted, tmp_path):
    path = tmp_path / "model.npz"
    fitted.save(path)
    sidecar_path = tmp_path / "model.json"
    sidecar = json.loads(sidecar_path.read_text())
    del sidecar["model_version"]
    sidecar_path.write_text(json.dumps(sidecar))
    loaded = VN2.load(path)
    # no recorded hash -> nothing to verify, version recomputed lazily
    assert loaded.model_version == fitted.model_version


def test_fingerprint_ignores_recorded_version(fitted):
    arrays = fitted._payload_arrays()
    meta = fitted._sidecar_meta()
    bare = _model_fingerprint(arrays, meta)
    assert bare == _model_fingerprint(
        arrays, {**meta, "model_version": "somethingelse"}
    )


# ----------------------------------------------------------------------
# incremental refit on loaded (state-less) models
# ----------------------------------------------------------------------


def test_refit_of_loaded_model_uses_new_states_only(
    fitted, split_trace, tmp_path
):
    _, second = split_trace
    path = tmp_path / "model.npz"
    fitted.save(path)
    loaded = VN2.load(path)
    assert loaded.states_ is None  # training states are not persisted

    new_states = build_states(second)
    incremental_refit(loaded, new_states, warm_iterations=20)
    assert len(loaded.states_) == len(new_states)
    assert loaded.rank_ == fitted.rank_
    report = loaded.diagnose(new_states.values[0])
    assert report.weights.shape == (8,)


def test_refit_rejects_empty_batch(fitted):
    from repro.core.states import stack_states

    with pytest.raises(ValueError, match="at least one"):
        incremental_refit(fitted, stack_states([]))


# ----------------------------------------------------------------------
# OnlineVN2Updater
# ----------------------------------------------------------------------


def test_absorb_leaves_serving_model_untouched(fitted, split_trace):
    _, second = split_trace
    updater = OnlineVN2Updater(fitted)
    psi_before = fitted.psi.copy()
    version_before = fitted.model_version

    updated = updater.absorb(build_states(second))
    assert updated is updater.model
    assert updated is not fitted
    assert np.array_equal(fitted.psi, psi_before)  # original untouched
    assert fitted.model_version == version_before
    assert updated.model_version != version_before
    assert updater.n_absorbed == len(build_states(second))


def test_drift_trigger(fitted):
    updater = OnlineVN2Updater(
        fitted, drift_threshold=0.5, min_samples=4, drift_window=8
    )
    assert updater.drift_score == 0.0
    for _ in range(3):
        updater.note_residual(0.9)
    assert updater.drift_score == 0.0  # below min_samples: noise
    updater.note_residual(0.9)
    assert updater.drift_score == pytest.approx(0.9)
    assert updater.should_refit()
    # the window is bounded: good residuals push the bad ones out
    for _ in range(8):
        updater.note_residual(0.1)
    assert updater.drift_score == pytest.approx(0.1)
    assert not updater.should_refit()


def test_absorb_resets_drift_window(fitted, split_trace):
    _, second = split_trace
    updater = OnlineVN2Updater(fitted, min_samples=2, drift_threshold=0.5)
    updater.note_residual(0.9)
    updater.note_residual(0.9)
    assert updater.should_refit()
    updater.absorb(build_states(second))
    assert updater.drift_score == 0.0


def test_updater_requires_fitted():
    with pytest.raises(RuntimeError):
        OnlineVN2Updater(VN2())


# ----------------------------------------------------------------------
# merge_state_matrices
# ----------------------------------------------------------------------


def test_merge_empty_is_none():
    from repro.core.states import stack_states

    assert merge_state_matrices([]) is None
    assert merge_state_matrices([stack_states([])]) is None


def test_merge_single_part_passthrough(split_trace):
    _, second = split_trace
    states = build_states(second)
    assert merge_state_matrices([states]) is states


def test_merge_concatenates_in_order(split_trace):
    first, second = split_trace
    a = build_states(first)
    b = build_states(second)
    merged = merge_state_matrices([a, b])
    assert len(merged) == len(a) + len(b)
    assert np.array_equal(merged.values[: len(a)], a.values)
    assert np.array_equal(merged.values[len(a):], b.values)
    assert np.array_equal(merged.node_ids[len(a):], b.node_ids)
