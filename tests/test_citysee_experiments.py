"""Tests for the Fig 6 harnesses (tiny profile; traces are disk-cached)."""

import numpy as np
import pytest

from repro.analysis.citysee_experiments import (
    EPISODE_FAMILIES,
    exp_fig6a,
    exp_fig6b,
    exp_fig6c,
    run_citysee_study,
)
from repro.traces.citysee import CitySeeProfile


@pytest.fixture(scope="module")
def study():
    return run_citysee_study(CitySeeProfile.tiny(), rank=16)


def test_fig6a_dip_detected(study):
    _tool, _trace, fig6a, _b, _c = study
    assert fig6a.dip_depth > 0.2
    assert fig6a.episode_detected()
    assert len(fig6a.prr) > 20


def test_fig6b_concentration(study):
    _tool, _trace, _a, fig6b, _c = study
    assert fig6b.n_states > 50
    assert fig6b.strengths.shape == (16,)
    assert fig6b.concentration > 0.2
    # top rows are sorted by strength
    strengths = [fig6b.strengths[j] for j in fig6b.top_rows]
    assert strengths == sorted(strengths, reverse=True)


def test_fig6c_families(study):
    _tool, _trace, _a, _b, fig6c = study
    assert set(fig6c.families_found) == set(EPISODE_FAMILIES)
    # at least two of the paper's three families recovered at tiny scale
    assert sum(fig6c.families_found.values()) >= 2
    assert all(label.explanation for _j, label in fig6c.rows)


def test_fig6b_requires_states(study):
    tool, trace, _a, _b, _c = study
    with pytest.raises(ValueError):
        exp_fig6b(tool, trace, window=(1e12, 2e12))


def test_to_text_render(study):
    _tool, _trace, fig6a, fig6b, fig6c = study
    assert "episode window" in fig6a.to_text()
    assert "concentration" in fig6b.to_text()
    assert "episode families" in fig6c.to_text()
