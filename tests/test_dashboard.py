"""Dashboard: topology assembly, SSE hub, served endpoints, eviction.

Covers the PR's acceptance points end to end against a real service:

* ``/api/topology`` (inproc and 2-worker cluster) validates against the
  documented contract (:func:`repro.dashboard.topology.validate_topology_doc`);
* the ``/api/incidents/stream`` SSE feed carries event objects
  bit-identical to a TCP subscriber's (``vn2 watch``) — the dashboard is
  just another subscriber;
* a deliberately stalled SSE reader is evicted
  (``repro_dashboard_clients_evicted_total``) while ingest and every
  other subscriber are unaffected;
* ``GET /health`` reports ``uptime_s`` / ``model_version`` / ``version``;
* the Prometheus exposition documents every metric with a real ``# HELP``
  line (``validate_exposition(require_help=True)``).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.dashboard.sse import DashboardHub, format_sse
from repro.dashboard.topology import (
    INCIDENT_KEYS,
    NODE_KEYS,
    assemble_topology,
    infer_edges,
    model_doc,
    validate_stream_event,
    validate_topology_doc,
)
from repro.metrics.catalog import METRIC_NAMES
from repro.obs import MetricsRegistry
from repro.obs.metrics import validate_exposition
from repro.service.client import ServiceClient, http_get_json
from repro.service.loadgen import replay_trace
from repro.service.server import ServiceConfig, start_service_thread


@pytest.fixture(scope="module")
def test_frame(testbed_trace):
    from repro.analysis.testbed_experiments import train_test_split

    _train, test = train_test_split(testbed_trace)
    return test.to_frame()


def _start(tool, **overrides):
    config = ServiceConfig(port=0, http_port=0, **overrides)
    return start_service_thread(tool, config)


def _http_get_raw(port, path):
    """GET returning (status, body bytes) — lets tests see 404s."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            .encode("latin-1")
        )
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    head, _, body = b"".join(chunks).partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body


def _sse_connect(port, path="/api/incidents/stream", rcvbuf=None):
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    if rcvbuf is not None:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
    sock.sendall(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode("latin-1"))
    return sock


def _drain_sse(sock, idle_s=1.0):
    """Read until the peer closes or goes idle; parse data payloads."""
    sock.settimeout(idle_s)
    buf = b""
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    except (socket.timeout, ConnectionResetError):
        pass
    head, _, body = buf.partition(b"\r\n\r\n")
    assert b"200" in head.split(b"\r\n", 1)[0]
    assert b"text/event-stream" in head
    out = []
    for block in body.split(b"\n\n"):
        event_name = None
        for line in block.split(b"\n"):
            if line.startswith(b"event: "):
                event_name = line[7:].decode()
            elif line.startswith(b"data: "):
                out.append((event_name, json.loads(line[6:])))
    return out


def _subscribe_events(host, port, deployment, silence_s=2.0):
    """TCP reference subscriber collecting events on a thread."""
    client = ServiceClient(host, port)
    client.connect()
    events = []

    def _collect():
        for event in client.events(deployment, timeout=silence_s):
            events.append(event)

    thread = threading.Thread(target=_collect, daemon=True)
    thread.start()
    time.sleep(0.2)  # let the subscribe land (materializes the shard)
    return client, thread, events


def _metric_total(handle, name):
    snap = handle.run_sync(handle.service.registry.snapshot)
    info = snap.get(name)
    if info is None:
        return None
    return sum(s["value"] for s in info["series"])


# --------------------------------------------------------------------------
# units: summaries, edge inference, docs, validators, framing
# --------------------------------------------------------------------------


def test_node_summaries_contract(testbed_tool, testbed_trace):
    from repro.core.streaming import StreamingDiagnosisSession, iter_packets

    session = StreamingDiagnosisSession(testbed_tool)
    for i, packet in enumerate(iter_packets(testbed_trace)):
        session.push_packet(*packet)
        if i >= 500:
            break
    summaries = session.node_summaries()
    assert summaries, "ingest must materialize node summaries"
    ids = [s["node_id"] for s in summaries]
    assert ids == sorted(ids)
    for summary in summaries:
        assert set(summary) == set(NODE_KEYS)
        assert summary["packets"] >= 1
        assert summary["last_seen"] is not None
    # topology metrics surfaced as raw floats
    assert any(s["hop"] is not None for s in summaries)
    assert any(s["path_etx"] is not None for s in summaries)
    # returned dicts are copies: mutation cannot corrupt session state
    summaries[0]["packets"] = -1
    assert session.node_summaries()[0]["packets"] >= 1


def _node(node_id, hop, etx=None):
    entry = {key: None for key in NODE_KEYS}
    entry.update(node_id=node_id, hop=hop, path_etx=etx, packets=1)
    return entry


def test_infer_edges_by_etx():
    nodes = [
        _node(0, 0, 0.0),
        _node(1, 1, 1.1), _node(2, 1, 2.9),
        # child etx 2.2: parent 1 (|2.2-1-1.1|=0.1) beats parent 2 (1.7)
        _node(3, 2, 2.2),
        # child etx 3.8: parent 2 (|3.8-1-2.9|=0.1) beats parent 1 (1.7)
        _node(4, 2, 3.8),
    ]
    edges = {(e["from"], e["to"]) for e in infer_edges(nodes)}
    assert edges == {(1, 0), (2, 0), (3, 1), (4, 2)}


def test_infer_edges_by_positions():
    nodes = [_node(0, 0), _node(1, 1), _node(2, 1), _node(3, 2)]
    positions = {0: (0, 0), 1: (10, 0), 2: (100, 0), 3: (95, 5)}
    edges = {(e["from"], e["to"]) for e in infer_edges(nodes, positions)}
    assert (3, 2) in edges  # geometric nearest hop-1 parent


def test_infer_edges_skips_gaps_and_hopless():
    nodes = [_node(0, 0), _node(9, None), _node(5, 2)]  # no hop-1 ring
    assert infer_edges(nodes) == []


def test_infer_edges_deterministic_tiebreak():
    # equidistant parents: lowest node id wins, every call
    nodes = [_node(7, 0, 1.0), _node(3, 0, 1.0), _node(10, 1, 2.0)]
    for _ in range(3):
        assert infer_edges(nodes) == [
            {"from": 10, "to": 3, "etx": 2.0}
        ]


def test_assemble_topology_stamps_positions():
    nodes = [_node(1, 0), _node(2, 1)]
    doc = assemble_topology(
        nodes,
        incidents={"open": [], "closed_total": 3, "evicted": 1},
        positions={1: (4.0, 5.0)},
    )
    by_id = {n["node_id"]: n for n in doc["nodes"]}
    assert (by_id[1]["x"], by_id[1]["y"]) == (4.0, 5.0)
    assert "x" not in by_id[2]
    assert doc["incidents_closed_total"] == 3
    assert doc["incidents_evicted"] == 1


def test_model_doc_contract(testbed_tool):
    doc = model_doc(testbed_tool)
    assert doc["version"] == testbed_tool.model_version
    assert doc["metric_names"] == list(METRIC_NAMES)
    assert len(doc["components"]) == doc["rank"]
    for component in doc["components"]:
        assert len(component["psi"]) == len(METRIC_NAMES)
        assert isinstance(component["hazards"], list)


def test_validate_topology_doc_rejects(testbed_tool):
    base = {
        "ts": 0.0,
        "server": {"backend": "inproc", "model_version": "x", "uptime_s": 1},
        "model": model_doc(testbed_tool),
        "deployments": {
            "d": {
                "nodes": [_node(1, 0)],
                "edges": [],
                "incidents_open": [],
            }
        },
    }
    assert validate_topology_doc(base) == 1
    for mutate in (
        lambda d: d.pop("model"),
        lambda d: d["server"].pop("uptime_s"),
        lambda d: d["model"]["components"][0]["psi"].pop(),
        lambda d: d["deployments"]["d"]["nodes"][0].pop("hazard"),
        lambda d: d["deployments"]["d"]["edges"].append(
            {"from": 1, "to": 99}
        ),
    ):
        doc = json.loads(json.dumps(base))
        mutate(doc)
        with pytest.raises(ValueError):
            validate_topology_doc(doc)


def test_validate_stream_event():
    assert validate_stream_event(
        {"type": "hello", "deployments": ["d1"]}
    ) == "hello"
    incident = {key: 1 for key in INCIDENT_KEYS}
    incident["node_ids"] = [4]
    event = dict(incident, kind="open", incident_id=1, time=0.0)
    assert validate_stream_event(
        {"type": "event", "deployment": "d1", "event": event}
    ) == "event"
    with pytest.raises(ValueError):
        validate_stream_event({"type": "nope"})
    with pytest.raises(ValueError):
        validate_stream_event({"type": "event", "deployment": "d1",
                               "event": {"kind": "open"}})


def test_format_sse_framing():
    frame = format_sse({"a": 1}, event="incident", retry_ms=2000)
    assert frame == b'event: incident\nretry: 2000\ndata: {"a":1}\n\n'
    assert format_sse({"b": 2}) == b'data: {"b":2}\n\n'


def test_hub_evicts_slow_client_unit():
    """Queue overflow → eviction: counter, flag, close sentinel, on_close."""

    class _Backend:
        @staticmethod
        def deployments():
            return []

        @staticmethod
        def subscribe(deployment, outbox):
            pass

        unsubscribe = subscribe

    class _Service:
        registry = MetricsRegistry(enabled=True)
        backend = _Backend()

    async def _run():
        service = _Service()
        hub = DashboardHub(service, max_queue=2)
        await hub.start()
        closed = []
        fast = hub.attach()
        slow = hub.attach(on_close=lambda: closed.append(True))
        for i in range(4):
            hub._broadcast({"type": "event", "deployment": "d",
                            "event": {"n": i}})
            while not fast.queue.empty():  # fast keeps up
                fast.queue.get_nowait()
        assert slow.evicted and closed == [True]
        assert not fast.evicted
        # the slow client's queue ends with the close sentinel (any
        # frames already buffered before eviction still drain first)
        frame = object()
        while frame is not None:
            frame = await slow.next_frame(0.1)
            assert frame != b": keepalive\n\n"
        await hub.stop()
        return service.registry.snapshot()

    snap = asyncio.run(_run())
    evicted = sum(
        s["value"]
        for s in snap["repro_dashboard_clients_evicted_total"]["series"]
    )
    assert evicted == 1
    assert snap["repro_dashboard_clients_evicted_total"]["help"]


def test_hub_deployment_filter_unit():
    class _Backend:
        @staticmethod
        def deployments():
            return []

        @staticmethod
        def subscribe(deployment, outbox):
            pass

        unsubscribe = subscribe

    class _Service:
        registry = MetricsRegistry(enabled=True)
        backend = _Backend()

    async def _run():
        hub = DashboardHub(_Service(), max_queue=16)
        await hub.start()
        wants_a = hub.attach(deployment="a")
        wants_all = hub.attach()
        hub._broadcast({"type": "event", "deployment": "a", "event": {}})
        hub._broadcast({"type": "event", "deployment": "b", "event": {}})
        sizes = (wants_a.queue.qsize(), wants_all.queue.qsize())
        await hub.stop()
        return sizes

    assert asyncio.run(_run()) == (1, 2)


# --------------------------------------------------------------------------
# integration: served endpoints
# --------------------------------------------------------------------------


def test_dashboard_disabled_is_404(testbed_tool):
    with _start(testbed_tool) as handle:
        for path in ("/dashboard", "/api/topology", "/api/series",
                     "/api/incidents/stream"):
            status, body = _http_get_raw(handle.http_port, path)
            assert status == 404, path
            assert b"--dashboard" in body  # actionable hint
        health = http_get_json("127.0.0.1", handle.http_port, "/health")
        assert health["dashboard"] is False


def test_health_reports_uptime_and_versions(testbed_tool):
    import repro

    with _start(testbed_tool, dashboard=True) as handle:
        time.sleep(0.05)
        health = http_get_json("127.0.0.1", handle.http_port, "/health")
        assert health["version"] == repro.__version__
        assert health["model_version"] == testbed_tool.model_version
        assert health["uptime_s"] > 0
        assert health["dashboard"] is True


def test_topology_endpoint_inproc(testbed_tool, test_frame):
    with _start(testbed_tool, dashboard=True) as handle:
        with ServiceClient("127.0.0.1", handle.port) as client:
            report = replay_trace(client, "d1", test_frame)
        doc = http_get_json(
            "127.0.0.1", handle.http_port, "/api/topology"
        )
        n_nodes = validate_topology_doc(doc)
        assert n_nodes > 0
        dep = doc["deployments"]["d1"]
        assert sum(n["packets"] for n in dep["nodes"]) == report.packets_sent
        assert dep["edges"], "testbed tree must yield inferred edges"
        assert doc["server"]["model_version"] == testbed_tool.model_version
        # deployment filter
        only = http_get_json(
            "127.0.0.1", handle.http_port, "/api/topology?deployment=d1"
        )
        assert list(only["deployments"]) == ["d1"]
        none = http_get_json(
            "127.0.0.1", handle.http_port, "/api/topology?deployment=nope"
        )
        assert none["deployments"] == {}

        # the static page ships and references the live endpoints
        status, page = _http_get_raw(handle.http_port, "/dashboard")
        assert status == 200
        for needle in (b"/api/topology", b"/api/incidents/stream",
                       b"/api/series", b"EventSource"):
            assert needle in page

        # sparkline feed carries the streaming counters
        series = http_get_json(
            "127.0.0.1", handle.http_port, "/api/series"
        )
        assert "repro_streaming_packets_total" in series["metrics"]


def test_prometheus_exposition_fully_helped(testbed_tool, test_frame):
    with _start(testbed_tool, dashboard=True) as handle:
        with ServiceClient("127.0.0.1", handle.port) as client:
            replay_trace(client, "d1", test_frame)
        status, text = _http_get_raw(
            handle.http_port, "/metrics?format=prometheus"
        )
        assert status == 200
        exposition = text.decode("utf-8")
        assert validate_exposition(exposition, require_help=True) > 0
        assert (
            "# HELP repro_dashboard_clients_evicted_total" in exposition
        )


def test_sse_events_bit_identical_to_subscriber(testbed_tool, test_frame):
    with _start(testbed_tool, dashboard=True) as handle:
        sse = _sse_connect(handle.http_port)
        time.sleep(0.2)
        ref, thread, ref_events = _subscribe_events(
            "127.0.0.1", handle.port, "d1"
        )
        with ServiceClient("127.0.0.1", handle.port) as client:
            replay_trace(client, "d1", test_frame)
        thread.join(timeout=30)
        ref.close()
        payloads = _drain_sse(sse)
        sse.close()
        hello = [p for name, p in payloads if name == "hello"]
        assert hello and validate_stream_event(hello[0]) == "hello"
        events = [p for name, p in payloads if name == "incident"]
        assert events, "replay must produce incident events"
        for payload in events:
            assert validate_stream_event(payload) == "event"
            assert payload["deployment"] == "d1"
        assert ref_events, "reference subscriber must see events"
        # bit-identity: the SSE data payloads embed the exact event
        # objects the TCP subscribe protocol (vn2 watch) delivers
        assert (
            [json.dumps(p["event"], sort_keys=True) for p in events]
            == [json.dumps(e, sort_keys=True) for e in ref_events]
        )


def test_sse_events_match_no_dashboard_run(testbed_tool, test_frame):
    """The dashboard changes nothing: the event stream served with the
    dashboard on equals a plain subscriber's from a dashboard-off run."""

    def _run(dashboard):
        with _start(testbed_tool, dashboard=dashboard) as handle:
            sse = None
            if dashboard:
                sse = _sse_connect(handle.http_port)
                time.sleep(0.2)
            ref, thread, events = _subscribe_events(
                "127.0.0.1", handle.port, "d1"
            )
            with ServiceClient("127.0.0.1", handle.port) as client:
                replay_trace(client, "d1", test_frame)
            thread.join(timeout=30)
            ref.close()
            if sse is not None:
                sse.close()
            return [json.dumps(e, sort_keys=True) for e in events]

    assert _run(dashboard=True) == _run(dashboard=False)


def test_slow_sse_consumer_evicted_ingest_unaffected(
    testbed_tool, test_frame
):
    """Chaos: a stalled SSE reader under load is evicted; ingest and the
    healthy subscriber see the complete, identical stream."""
    with _start(
        testbed_tool, dashboard=True, dashboard_queue=8
    ) as handle:
        stalled = _sse_connect(handle.http_port, rcvbuf=4096)
        time.sleep(0.2)  # attached; then never read again
        ref, thread, ref_events = _subscribe_events(
            "127.0.0.1", handle.port, "d1"
        )
        with ServiceClient("127.0.0.1", handle.port) as client:
            report = replay_trace(client, "d1", test_frame)
        thread.join(timeout=30)
        ref.close()

        assert report.packets_sent == len(test_frame)
        assert _metric_total(
            handle, "repro_dashboard_clients_evicted_total"
        ) == 1
        assert _metric_total(handle, "repro_dashboard_clients") == 0
        assert ref_events, "healthy subscriber must be unaffected"
        events_total = _metric_total(
            handle, "repro_dashboard_events_total"
        )
        assert events_total == len(ref_events)

        # the server terminated the stalled connection (abort surfaces
        # as EOF or RST depending on what was in flight) — it must not
        # keep serving a client it declared dead
        stalled.settimeout(10.0)
        terminated = False
        try:
            while stalled.recv(65536):
                pass
            terminated = True  # EOF
        except ConnectionResetError:
            terminated = True
        except socket.timeout:
            pass
        stalled.close()
        assert terminated, "stalled client was not disconnected"


def test_cluster_topology_merges_workers(testbed_tool, test_frame):
    with _start(
        testbed_tool, dashboard=True, workers=2, backend="pool"
    ) as handle:
        with ServiceClient("127.0.0.1", handle.port) as client:
            replay_trace(client, "alpha", test_frame)
            replay_trace(client, "beta", test_frame)
        doc = http_get_json(
            "127.0.0.1", handle.http_port, "/api/topology", timeout=30.0
        )
        n_nodes = validate_topology_doc(doc)
        assert sorted(doc["deployments"]) == ["alpha", "beta"]
        per_dep = {
            name: len(dep["nodes"])
            for name, dep in doc["deployments"].items()
        }
        assert per_dep["alpha"] == per_dep["beta"] > 0
        assert n_nodes == per_dep["alpha"] + per_dep["beta"]
        # merged scrape stays fully HELP-documented with workers
        status, text = _http_get_raw(
            handle.http_port, "/metrics?format=prometheus"
        )
        assert status == 200
        assert validate_exposition(
            text.decode("utf-8"), require_help=True
        ) > 0
