"""Unit tests for the routing engine."""

import pytest

from repro.simnet.counters import CounterSet
from repro.simnet.ctp.etx import MAX_ETX, LinkEstimator
from repro.simnet.ctp.routing import RoutingEngine


def make_engine(is_sink=False):
    counters = CounterSet()
    estimator = LinkEstimator()
    engine = RoutingEngine(
        node_id=9, estimator=estimator, counters=counters, is_sink=is_sink
    )
    return engine, estimator, counters


def feed_beacons(estimator, neighbor_id, advertised, rssi=-60.0, n=40,
                 path_length=1):
    for _ in range(n):
        estimator.on_beacon(
            neighbor_id, rssi=rssi, advertised_path_etx=advertised, now=1.0,
            advertised_path_length=path_length,
        )


def test_sink_has_zero_cost_and_no_parent():
    engine, _, _ = make_engine(is_sink=True)
    assert engine.path_etx() == 0.0
    assert engine.path_length() == 0
    assert engine.current_parent(0.0) is None


def test_no_neighbors_means_no_parent():
    engine, _, _ = make_engine()
    engine.update_route(0.0)
    assert engine.current_parent(0.0) is None
    assert engine.path_etx() == MAX_ETX


def test_picks_lowest_cost_neighbor():
    engine, estimator, _ = make_engine()
    feed_beacons(estimator, 1, advertised=4.0)
    feed_beacons(estimator, 2, advertised=1.0)
    engine.update_route(0.0)
    assert engine.current_parent(0.0) == 2
    assert engine.path_etx() == pytest.approx(2.0, abs=0.5)


def test_path_length_is_parent_plus_one():
    engine, estimator, _ = make_engine()
    feed_beacons(estimator, 2, advertised=1.0, path_length=3)
    engine.update_route(0.0)
    assert engine.path_length() == 4


def test_initial_acquisition_not_counted_as_change():
    engine, estimator, counters = make_engine()
    feed_beacons(estimator, 1, advertised=1.0)
    engine.update_route(0.0)
    assert counters.parent_change_counter == 0


def test_hysteresis_prevents_marginal_switch():
    engine, estimator, counters = make_engine()
    feed_beacons(estimator, 1, advertised=2.0)
    engine.update_route(0.0)
    assert engine.parent == 1
    # a barely-better alternative does not trigger a switch
    feed_beacons(estimator, 2, advertised=1.5)
    engine.update_route(0.0)
    assert engine.parent == 1
    assert counters.parent_change_counter == 0


def test_clear_improvement_switches_and_counts():
    engine, estimator, counters = make_engine()
    feed_beacons(estimator, 1, advertised=8.0)
    engine.update_route(0.0)
    feed_beacons(estimator, 2, advertised=1.0)
    engine.update_route(0.0)
    assert engine.parent == 2
    assert counters.parent_change_counter == 1


def test_uphill_neighbors_not_eligible():
    engine, estimator, _ = make_engine()
    feed_beacons(estimator, 1, advertised=3.0)
    engine.update_route(0.0)
    own = engine.path_etx()
    # a "neighbor" advertising a worse path than ours (likely a descendant)
    feed_beacons(estimator, 2, advertised=own + 5.0)
    engine.update_route(0.0)
    assert engine.parent == 1


def test_parent_loss_clears_parent():
    engine, estimator, _ = make_engine()
    feed_beacons(estimator, 1, advertised=2.0)
    engine.update_route(0.0)
    del estimator.entries[1]
    engine.on_parent_lost()
    assert engine.parent is None


def test_forced_parent_overrides_until_expiry():
    engine, estimator, _ = make_engine()
    feed_beacons(estimator, 1, advertised=1.0)
    engine.update_route(0.0)
    engine.force_parent(7, until=100.0)
    assert engine.current_parent(50.0) == 7
    assert engine.current_parent(150.0) == 1


def test_route_changed_flag():
    engine, estimator, _ = make_engine()
    feed_beacons(estimator, 1, advertised=1.0)
    engine.update_route(0.0)
    assert engine.consume_route_changed()
    assert not engine.consume_route_changed()


def test_beacon_advertises_current_cost():
    engine, estimator, _ = make_engine()
    feed_beacons(estimator, 1, advertised=1.0)
    engine.update_route(0.0)
    beacon = engine.make_beacon()
    assert beacon.src == 9
    assert beacon.path_etx == pytest.approx(engine.path_etx())


def test_clear_resets_routing_state():
    engine, estimator, _ = make_engine()
    feed_beacons(estimator, 1, advertised=1.0)
    engine.update_route(0.0)
    engine.clear()
    assert engine.parent is None
