"""The sink server, driven over real sockets.

The acceptance criteria of the service PR live here:

* **Differential**: a trace replayed through the server for one
  deployment produces the exact same incident-event objects — bit-
  identical strengths — as :meth:`VN2.diagnose_stream` on the same trace
  (the drain flush included).
* **Sharding**: two deployments fed interleaved batches diagnose
  concurrently without cross-talk; each matches its own solo replay.
* **Backpressure**: a full queue yields explicit ``retry_after`` acks
  and the SDK's retry loop eventually lands every packet — nothing is
  dropped.

Servers run on ephemeral ports in a background event-loop thread
(:func:`start_service_thread`); clients are the real SDK.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.streaming import iter_packets
from repro.service import protocol
from repro.service.client import ServiceClient, http_get_json
from repro.service.loadgen import replay_trace
from repro.service.server import ServiceConfig, start_service_thread
from repro.traces.frame import as_frame


def _reference_events(tool, source):
    """Incident-event objects of a local (in-process) streaming replay."""
    events = []
    for update in tool.diagnose_stream(source):
        events.extend(protocol.incident_event_obj(e) for e in update.events)
    return events


class _Subscriber(threading.Thread):
    """Subscribe synchronously, then collect events until the server closes.

    The subscription handshake completes in ``__init__`` so a test can
    start ingesting immediately after construction without racing the
    subscribe past the first event.
    """

    def __init__(self, port: int, deployment: str):
        super().__init__(daemon=True)
        self.client = ServiceClient(port=port)
        self.client._ensure_connected()
        reply = self.client._roundtrip(protocol.subscribe(deployment, 1))
        reply.pop("_reconnects", None)
        assert reply == protocol.subscribed(1, deployment)
        self.events = []
        self.start()

    def run(self):
        while True:
            try:
                message = self.client._read_message()
            except (ConnectionError, OSError):
                return
            if message.get("type") == "event":
                self.events.append(message["event"])


@pytest.fixture(scope="module")
def testbed_frame(testbed_trace):
    return as_frame(testbed_trace)


def test_served_events_match_local_replay(testbed_tool, testbed_frame):
    reference = _reference_events(testbed_tool, testbed_frame)
    assert reference, "testbed replay produced no incident events"

    with start_service_thread(
        testbed_tool, ServiceConfig(port=0, http_port=0)
    ) as handle:
        subscriber = _Subscriber(handle.port, "testbed")
        with ServiceClient(port=handle.port) as client:
            report = replay_trace(client, "testbed", testbed_frame,
                                  batch_size=256)
        assert report.packets_sent == len(testbed_frame)
        handle.stop(drain=True)  # drain flush-closes open incidents
    subscriber.join(timeout=10.0)

    # Bit-identical: same events, same order, same float strengths.
    assert subscriber.events == reference


def test_two_deployments_diagnose_without_crosstalk(testbed_tool, testbed_frame):
    mid = float(testbed_frame.generated_at[len(testbed_frame) // 2])
    frame_a = testbed_frame
    frame_b = testbed_frame.window(0.0, mid)
    reference_a = _reference_events(testbed_tool, frame_a)
    reference_b = _reference_events(testbed_tool, frame_b)
    assert reference_a != reference_b  # distinct inputs, distinct streams

    with start_service_thread(
        testbed_tool, ServiceConfig(port=0, http_port=0)
    ) as handle:
        sub_a = _Subscriber(handle.port, "city-a")
        sub_b = _Subscriber(handle.port, "city-b")
        packets_a = list(iter_packets(frame_a))
        packets_b = list(iter_packets(frame_b))
        with ServiceClient(port=handle.port) as client:
            # Interleave batches of the two deployments on one connection:
            # shard isolation, not connection affinity, must keep them apart.
            step = 64
            for start in range(0, max(len(packets_a), len(packets_b)), step):
                if start < len(packets_a):
                    client.submit("city-a", packets_a[start:start + step])
                if start < len(packets_b):
                    client.submit("city-b", packets_b[start:start + step])
        metrics = http_get_json(handle.host, handle.http_port, "/metrics")
        assert set(metrics["deployments"]) == {"city-a", "city-b"}
        handle.stop(drain=True)
    sub_a.join(timeout=10.0)
    sub_b.join(timeout=10.0)

    assert sub_a.events == reference_a
    assert sub_b.events == reference_b


def test_backpressure_acks_and_sdk_retry_drop_nothing(testbed_tool, testbed_frame):
    packets = list(iter_packets(testbed_frame))[:96]
    config = ServiceConfig(port=0, http_port=0, queue_size=64,
                           retry_after_s=0.02)
    with start_service_thread(testbed_tool, config) as handle:
        probe = ServiceClient(port=handle.port)
        probe._ensure_connected()
        probe.submit("bp", packets[:1])  # create the shard
        # Give the worker a beat to finish, then freeze it so the queue
        # can only fill up.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if handle.run_sync(lambda: handle.service.shards["bp"].pending) == 0:
                break
            time.sleep(0.01)
        handle.run_sync(lambda: handle.service.shards["bp"].pause())

        # Fill the queue with raw ingests until the explicit rejection.
        rejected = None
        for i in range(4):
            reply = probe._roundtrip(protocol.ingest(
                "bp", [dict(node_id=int(p[0]), epoch=int(p[1]),
                            generated_at=float(p[2]), values=p[3].tolist())
                       for p in packets[1:33]],
                seq=100 + i,
            ))
            reply.pop("_reconnects", None)
            assert reply["queued"] <= config.queue_size  # bounded, always
            if reply["accepted"] == 0:
                rejected = reply
                break
        assert rejected is not None, "queue never filled"
        assert rejected["reason"] == "queue_full"
        assert rejected["retry_after"] == pytest.approx(0.02)

        # The SDK blocks on backpressure and retries; once the worker
        # resumes, the batch lands. Nothing was dropped along the way.
        sdk = ServiceClient(port=handle.port)
        outcome = {}

        def _submit():
            outcome["result"] = sdk.submit("bp", packets[33:65])

        submitter = threading.Thread(target=_submit)
        submitter.start()
        time.sleep(0.15)  # let it hit backpressure at least once
        handle.run_sync(lambda: handle.service.shards["bp"].unpause())
        submitter.join(timeout=10.0)
        result = outcome["result"]
        assert result.accepted == 32
        assert result.backpressure_retries >= 1

        # Drain and account for every accepted packet.
        handle.call(handle.service.shards["bp"].drain)
        snapshot = handle.run_sync(
            lambda: handle.service.shards["bp"].snapshot()
        )
        assert snapshot["packets"] == snapshot["packets_accepted"]
        assert snapshot["batches_rejected"] >= 1
        assert snapshot["queue_depth_packets"] == 0
        probe.close()
        sdk.close()
        handle.stop(drain=False)  # shard already drained above


@pytest.fixture(scope="module")
def served(testbed_tool, testbed_frame):
    """A shared running service with one replayed deployment (drained)."""
    handle = start_service_thread(
        testbed_tool, ServiceConfig(port=0, http_port=0)
    )
    with ServiceClient(port=handle.port) as client:
        replay_trace(client, "ops", testbed_frame, batch_size=512)
    # Wait for the queue to empty so metric assertions are stable.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        snapshot = http_get_json(handle.host, handle.http_port, "/metrics")
        if snapshot["totals"]["queue_depth_packets"] == 0:
            break
        time.sleep(0.05)
    yield handle
    handle.stop()


def test_http_health(served):
    health = http_get_json(served.host, served.http_port, "/health")
    assert health["status"] == "ok"
    assert health["deployments"] == 1
    import repro

    assert health["version"] == repro.__version__


def test_http_metrics_shape(served, testbed_frame):
    metrics = http_get_json(served.host, served.http_port, "/metrics")
    assert metrics["server"]["queue_size"] == ServiceConfig().queue_size
    assert metrics["server"]["protocol_version"] == protocol.PROTOCOL_VERSION
    totals = metrics["totals"]
    assert totals["packets"] == len(testbed_frame)
    assert totals["states"] > 0
    assert totals["exceptions"] > 0
    assert totals["batches_rejected"] == 0
    shard = metrics["deployments"]["ops"]
    assert shard["packets_accepted"] == len(testbed_frame)
    latency = shard["ingest_latency"]
    assert latency["count"] == shard["batches_accepted"]
    assert latency["p50_ms"] is not None
    assert latency["p99_ms"] >= latency["p50_ms"]


def test_http_metrics_prometheus(served):
    from urllib.request import urlopen

    from repro.obs import validate_exposition

    url = (
        f"http://{served.host}:{served.http_port}/metrics?format=prometheus"
    )
    with urlopen(url, timeout=10.0) as response:
        assert response.headers.get_content_type() == "text/plain"
        body = response.read().decode("utf-8")
    assert validate_exposition(body) > 0
    lines = body.splitlines()
    assert "# TYPE repro_streaming_packets_total counter" in lines
    # shard metrics carry the deployment label
    assert any(
        line.startswith('repro_service_packets_accepted_total{deployment="ops"}')
        for line in lines
    )
    assert any(
        line.startswith('repro_streaming_packet_seconds_bucket{')
        for line in lines
    )
    # JSON remains the default rendering
    assert "totals" in http_get_json(served.host, served.http_port, "/metrics")


def test_http_incidents(served):
    doc = http_get_json(served.host, served.http_port, "/incidents")
    ops = doc["deployments"]["ops"]
    # Not drained yet: closed ones from gap expiry, plus whatever is open.
    assert ops["closed_total"] == len(ops["closed"]) + ops["evicted"]
    for incident in ops["closed"] + ops["open"]:
        assert set(incident) == {
            "hazard", "node_ids", "start", "end", "peak_strength",
            "total_strength", "n_observations",
        }
    filtered = http_get_json(
        served.host, served.http_port, "/incidents?deployment=ops"
    )
    assert filtered == doc
    empty = http_get_json(
        served.host, served.http_port, "/incidents?deployment=nope"
    )
    assert empty == {"deployments": {}}


def test_http_unknown_route_404(served):
    with pytest.raises(ConnectionError, match="404"):
        http_get_json(served.host, served.http_port, "/nope")


def test_hello_and_protocol_errors_keep_connection_usable(served, testbed_frame):
    client = ServiceClient(port=served.port)
    client._ensure_connected()
    assert client.hello["n_metrics"] == 43

    raw = client._file
    # Garbage line -> bad_json error, connection survives.
    raw.write(b"not json\n")
    raw.flush()
    reply = client._read_message()
    assert (reply["type"], reply["code"]) == ("error", "bad_json")
    # Wrong version -> bad_version, seq echoed.
    raw.write(protocol.encode({"v": 99, "type": "ingest", "seq": 5}))
    raw.flush()
    reply = client._read_message()
    assert (reply["code"], reply["seq"]) == ("bad_version", 5)
    # Unknown type -> bad_type.
    raw.write(protocol.encode({"v": 1, "type": "frobnicate", "seq": 6}))
    raw.flush()
    assert client._read_message()["code"] == "bad_type"
    # Malformed deployment -> bad_deployment.
    packet = next(iter_packets(testbed_frame))
    raw.write(protocol.encode(protocol.ingest("no spaces", [
        dict(node_id=int(packet[0]), epoch=int(packet[1]),
             generated_at=float(packet[2]), values=packet[3].tolist())
    ], seq=7)))
    raw.flush()
    assert client._read_message()["code"] == "bad_deployment"
    # ... and a valid ingest still works on the same connection.
    result = client.submit("ops-errors", [packet])
    assert result.accepted == 1
    client.close()
