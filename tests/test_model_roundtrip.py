"""VN2.save/load round-trip: every field survives, diagnosis is identical.

The ``vn2 watch`` deployment path loads a model in a different process
from the one that trained it, so persistence must carry *everything* the
diagnosis path reads: factor matrices, normalizer (including its method
and quantile), the full config, and the training deviation statistics
that power the ε exception screen.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.normalization import MinMaxNormalizer
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states
from repro.metrics.catalog import NUM_METRICS


@pytest.fixture(scope="module")
def custom_tool(testbed_trace):
    """A model with every config knob off its default value, so the
    round-trip test cannot pass by accident of defaults."""
    config = VN2Config(
        rank=9,
        rank_candidates=(6, 9, 12),
        filter_exceptions=True,
        exception_threshold=0.02,
        retention=0.85,
        nmf_iterations=120,
        nmf_init="random",
        seed=3,
        normalizer_pad=0.07,
        min_weight_fraction=0.15,
    )
    return VN2(config).fit(testbed_trace)


@pytest.fixture(scope="module")
def roundtrip(custom_tool, tmp_path_factory):
    path = tmp_path_factory.mktemp("model") / "vn2"
    custom_tool.save(path)
    return custom_tool, VN2.load(path)


def test_every_config_field_survives(roundtrip):
    original, loaded = roundtrip
    for field in dataclasses.fields(VN2Config):
        a = getattr(original.config, field.name)
        b = getattr(loaded.config, field.name)
        if field.name == "rank_candidates":
            assert tuple(a) == tuple(b), field.name
        else:
            assert a == b, field.name


def test_factor_matrices_survive_bitwise(roundtrip):
    original, loaded = roundtrip
    assert np.array_equal(original.nmf_.W, loaded.nmf_.W)
    assert np.array_equal(original.nmf_.Psi, loaded.nmf_.Psi)
    assert np.array_equal(
        original.sparsify_.W_sparse, loaded.sparsify_.W_sparse
    )
    assert loaded.rank_ == original.rank_


def test_normalizer_survives_including_method(roundtrip):
    original, loaded = roundtrip
    assert np.array_equal(original.normalizer_.lo, loaded.normalizer_.lo)
    assert np.array_equal(original.normalizer_.hi, loaded.normalizer_.hi)
    assert loaded.normalizer_.method == original.normalizer_.method
    assert loaded.normalizer_.robust_quantile == pytest.approx(
        original.normalizer_.robust_quantile
    )


def test_nondefault_normalizer_method_survives(testbed_trace, tmp_path):
    """A model fitted with a plain min-max normalizer loads back as one."""
    tool = VN2(VN2Config(rank=6, nmf_iterations=40)).fit(testbed_trace)
    states = build_states(testbed_trace)
    tool.normalizer_ = MinMaxNormalizer.fit(
        states.values, method="minmax", robust_quantile=0.9
    )
    path = tmp_path / "minmax-model"
    tool.save(path)
    loaded = VN2.load(path)
    assert loaded.normalizer_.method == "minmax"
    assert loaded.normalizer_.robust_quantile == pytest.approx(0.9)


def test_training_stats_survive(roundtrip):
    original, loaded = roundtrip
    assert np.array_equal(original._train_mean, loaded._train_mean)
    assert np.array_equal(original._train_std, loaded._train_std)
    assert loaded._train_max_eps == original._train_max_eps


def test_diagnosis_is_bit_identical_after_load(roundtrip, testbed_trace):
    original, loaded = roundtrip
    states = build_states(testbed_trace)
    for i in range(0, len(states), 100):
        a = original.diagnose(states.values[i])
        b = loaded.diagnose(states.values[i])
        assert np.array_equal(a.weights, b.weights)
        assert a.residual == b.residual
        assert a.relative_residual == b.relative_residual
        assert [(c.index, c.strength) for c in a.ranked] == [
            (c.index, c.strength) for c in b.ranked
        ]


def test_exception_screen_is_bit_identical_after_load(roundtrip,
                                                      testbed_trace):
    original, loaded = roundtrip
    states = build_states(testbed_trace)
    assert np.array_equal(
        original._exception_scores(states.values),
        loaded._exception_scores(states.values),
    )
    state = np.zeros(NUM_METRICS)
    assert loaded.exception_score(state) == original.exception_score(state)
    assert loaded.is_exception(state) == original.is_exception(state)


def test_labels_survive(roundtrip):
    original, loaded = roundtrip
    assert [
        (lab.family, lab.primary_hazard, lab.is_baseline)
        for lab in original.labels
    ] == [
        (lab.family, lab.primary_hazard, lab.is_baseline)
        for lab in loaded.labels
    ]
