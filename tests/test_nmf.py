"""Tests for the NMF implementation (Algorithm 1), with hypothesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.nmf import NMFResult, frobenius_loss, nmf


def nonneg_matrices(max_n=20, max_m=10):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(3, max_n), st.integers(3, max_m)),
        elements=st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False,
                           width=64),
    )


@given(nonneg_matrices(), st.integers(1, 3), st.sampled_from(["random", "nndsvd"]))
@settings(max_examples=30, deadline=None)
def test_factors_nonnegative_and_loss_monotone(V, r, init):
    result = nmf(V, r, n_iter=40, tol=0.0, init=init)
    assert np.all(result.W >= 0)
    assert np.all(result.Psi >= 0)
    losses = result.loss_history
    # Theorem 1: the Euclidean distance is non-increasing.
    for a, b in zip(losses, losses[1:]):
        assert b <= a + 1e-6 * max(a, 1.0)


@given(nonneg_matrices(max_n=10, max_m=6))
@settings(max_examples=20, deadline=None)
def test_higher_rank_never_much_worse(V):
    low = nmf(V, 1, n_iter=120, init="nndsvd").loss
    high = nmf(V, 3, n_iter=120, init="nndsvd").loss
    # relative slack plus an absolute floor scaled to the data: on an
    # exactly rank-1 matrix, r=1 converges to ~0 while r=3 still carries
    # the small NNDSVD floor on its extra components after 120 sweeps
    assert high <= low * 1.05 + 0.01 * np.linalg.norm(V) + 1e-6


def test_exact_low_rank_recovery():
    rng = np.random.default_rng(0)
    W_true = rng.uniform(0, 1, size=(30, 3))
    Psi_true = rng.uniform(0, 1, size=(3, 12))
    V = W_true @ Psi_true
    result = nmf(V, 3, n_iter=2000, tol=1e-12, init="nndsvd")
    relative = result.loss / np.linalg.norm(V)
    assert relative < 0.02


def test_reconstruct_shape():
    V = np.random.default_rng(1).uniform(0, 1, size=(8, 5))
    result = nmf(V, 2, n_iter=20)
    assert result.reconstruct().shape == V.shape
    assert result.rank == 2


def test_random_init_deterministic_with_rng():
    V = np.random.default_rng(1).uniform(0, 1, size=(10, 6))
    a = nmf(V, 2, n_iter=10, rng=np.random.default_rng(7))
    b = nmf(V, 2, n_iter=10, rng=np.random.default_rng(7))
    assert np.allclose(a.Psi, b.Psi)


def test_default_rng_is_fixed():
    V = np.random.default_rng(1).uniform(0, 1, size=(10, 6))
    assert np.allclose(nmf(V, 2, n_iter=5).Psi, nmf(V, 2, n_iter=5).Psi)


def test_convergence_flag():
    rng = np.random.default_rng(0)
    V = rng.uniform(0, 1, size=(20, 8))
    result = nmf(V, 2, n_iter=5000, tol=1e-7)
    assert result.converged
    assert result.n_iter < 5000


def test_rejects_negative_input():
    with pytest.raises(ValueError):
        nmf(np.array([[1.0, -1.0]]), 1)


def test_rejects_nan():
    with pytest.raises(ValueError):
        nmf(np.array([[1.0, np.nan]]), 1)


def test_rejects_bad_rank():
    V = np.ones((4, 4))
    with pytest.raises(ValueError):
        nmf(V, 0)
    with pytest.raises(ValueError):
        nmf(V, 5)


def test_rejects_bad_init():
    with pytest.raises(ValueError):
        nmf(np.ones((3, 3)), 1, init="magic")


def test_rejects_empty():
    with pytest.raises(ValueError):
        nmf(np.zeros((0, 3)), 1)


def test_frobenius_loss_definition():
    V = np.eye(3)
    W = np.zeros((3, 1))
    Psi = np.zeros((1, 3))
    assert frobenius_loss(V, W, Psi) == pytest.approx(np.sqrt(3.0))


def test_nndsvd_beats_random_early():
    rng = np.random.default_rng(3)
    W_true = rng.uniform(0, 1, size=(40, 4))
    V = W_true @ rng.uniform(0, 1, size=(4, 20))
    svd_loss = nmf(V, 4, n_iter=10, tol=0.0, init="nndsvd").loss
    rnd_loss = nmf(V, 4, n_iter=10, tol=0.0, init="random",
                   rng=np.random.default_rng(0)).loss
    assert svd_loss <= rnd_loss
