"""Unit tests of the scenario engine's job/result layer.

Covers the spec helpers (seed sweeps, cache-path dispatch, grid
expansion), result bookkeeping (submission order, timings, worker pids),
and failure capture — a crashing job must come back as an error-carrying
:class:`JobResult`, never take its siblings down, and only raise when its
frame is actually requested.  The bit-identity of parallel output lives
in ``test_runner_differential.py``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.runner import (
    CitySeeJob,
    RunnerError,
    TestbedJob,
    citysee_seed_sweep,
    citysee_study_jobs,
    execute_job,
    job_cache_path,
    run_jobs,
    sweep_seeds,
)
from repro.runner import testbed_scenario_jobs as make_testbed_jobs
from repro.simnet.rng import RngRegistry, derive_seed
from repro.traces.citysee import CitySeeProfile, citysee_cache_paths
from repro.traces.testbed import TestbedScenario
from repro.traces.testbed import testbed_cache_paths as tb_cache_paths


def quick_profile(seed: int = 2011) -> CitySeeProfile:
    """The cheapest valid CitySee run (~1 s): for engine plumbing tests."""
    return CitySeeProfile.tiny(seed=seed, days=0.5)


def broken_profile() -> CitySeeProfile:
    """A spec whose generation fails immediately (no nodes to place)."""
    return dataclasses.replace(quick_profile(), n_nodes=0)


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------


def test_sweep_seeds_deterministic_and_distinct():
    a = sweep_seeds(2011, 6)
    b = sweep_seeds(2011, 6)
    assert a == b
    assert len(set(a)) == 6
    # Prefix-stable: growing the sweep keeps the earlier members.
    assert sweep_seeds(2011, 3) == a[:3]


def test_sweep_seeds_namespaces_are_independent():
    assert sweep_seeds(2011, 3, "evaluate") != sweep_seeds(2011, 3, "ablation")
    assert sweep_seeds(2011, 3) != sweep_seeds(2012, 3)


def test_derive_seed_matches_registry_method():
    assert RngRegistry(2011).derive("sweep.0") == derive_seed(2011, "sweep.0")
    # Seeds must be valid numpy Generator seeds (non-negative ints).
    assert derive_seed(2011, "x") >= 0


def test_citysee_seed_sweep_preserves_shape():
    profile = quick_profile()
    jobs = citysee_seed_sweep(profile, 3, namespace="t")
    assert len(jobs) == 3
    assert [j.profile.seed for j in jobs] == sweep_seeds(profile.seed, 3, "t")
    for job in jobs:
        assert job.profile.n_nodes == profile.n_nodes
        assert job.profile.days == profile.days
        assert not job.episode


def test_citysee_study_jobs_pair():
    profile = quick_profile()
    training, episode = citysee_study_jobs(profile, episode_total_days=14.0)
    assert training.profile == profile and not training.episode
    assert episode.episode and episode.profile.days == 14.0
    assert episode.profile.seed == profile.seed


def test_testbed_scenario_jobs():
    jobs = make_testbed_jobs(
        [TestbedScenario.EXPANSIVE, TestbedScenario.LOCAL], seed=3
    )
    assert [j.scenario for j in jobs] == [
        TestbedScenario.EXPANSIVE, TestbedScenario.LOCAL,
    ]
    assert all(j.seed == 3 for j in jobs)


# ----------------------------------------------------------------------
# cache-path dispatch
# ----------------------------------------------------------------------


def test_job_cache_path_matches_generators(tmp_path):
    profile = quick_profile()
    npz, _jsonl = citysee_cache_paths(profile, cache_dir=tmp_path)
    assert job_cache_path(CitySeeJob(profile), tmp_path) == npz

    job = TestbedJob(scenario=TestbedScenario.LOCAL, seed=9, duration_s=1800.0)
    expected = tb_cache_paths(
        TestbedScenario.LOCAL, seed=9, duration_s=1800.0, cache_dir=tmp_path
    )
    assert job_cache_path(job, tmp_path) == expected


def test_job_cache_path_distinguishes_episode(tmp_path):
    profile = quick_profile()
    plain = job_cache_path(CitySeeJob(profile), tmp_path)
    episode = job_cache_path(CitySeeJob(profile, episode=True), tmp_path)
    assert plain != episode


def test_unknown_job_type_rejected(tmp_path):
    with pytest.raises(TypeError):
        job_cache_path(object(), tmp_path)  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        execute_job(object())  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# result bookkeeping
# ----------------------------------------------------------------------


def test_inline_run_records_order_timings_and_spool(tmp_path):
    jobs = citysee_seed_sweep(quick_profile(), 2, namespace="order")
    report = run_jobs(jobs, n_workers=1, cache_dir=tmp_path)
    assert report.ok and report.n_workers == 1
    assert [r.index for r in report.results] == [0, 1]
    assert [r.job for r in report.results] == jobs
    for r in report.results:
        assert r.seconds > 0.0
        assert r.pid > 0
        assert r.path is not None and r.path.endswith(".npz")
    frames = report.frames()
    assert len(frames) == 2 and all(len(f) > 0 for f in frames)


def test_timings_report_is_json_ready(tmp_path):
    import json

    jobs = [CitySeeJob(quick_profile())]
    report = run_jobs(jobs, n_workers=1, cache_dir=tmp_path)
    payload = report.timings()
    assert payload["n_workers"] == 1
    assert len(payload["jobs"]) == 1
    assert payload["jobs"][0]["ok"] is True
    out = tmp_path / "artifacts" / "timings.json"
    report.write_timings(out)
    assert json.loads(out.read_text())["jobs"][0]["index"] == 0
    assert "ok" in report.to_text()


def test_frame_lazy_loads_from_spooled_path(tmp_path):
    job = CitySeeJob(quick_profile())
    report = run_jobs([job], n_workers=1, cache_dir=tmp_path)
    result = report.results[0]
    first = result.frame()
    assert result.frame() is first  # cached after the first load


def test_no_cache_returns_frames_inline(tmp_path):
    report = run_jobs(
        [CitySeeJob(quick_profile())], n_workers=1,
        use_cache=False, cache_dir=tmp_path,
    )
    result = report.results[0]
    assert result.path is None
    assert len(result.frame()) > 0
    assert list(tmp_path.iterdir()) == []  # nothing spooled


# ----------------------------------------------------------------------
# failure capture
# ----------------------------------------------------------------------


def test_inline_failure_captured_not_raised(tmp_path):
    jobs = [CitySeeJob(broken_profile()), CitySeeJob(quick_profile())]
    report = run_jobs(jobs, n_workers=1, cache_dir=tmp_path)
    assert not report.ok
    bad, good = report.results
    assert not bad.ok and bad.error and "Traceback" in bad.error
    assert good.ok and len(good.frame()) > 0
    with pytest.raises(RunnerError):
        bad.frame()
    with pytest.raises(RunnerError):
        report.frames()
    assert report.errors() == [bad]


def test_pool_failure_captured_and_siblings_survive(tmp_path):
    jobs = [CitySeeJob(quick_profile()), CitySeeJob(broken_profile())]
    report = run_jobs(jobs, n_workers=2, cache_dir=tmp_path)
    assert report.n_workers == 2
    good, bad = report.results
    assert good.ok and len(good.frame()) > 0
    assert not bad.ok and bad.error and "Traceback" in bad.error
    # Results stay in submission order even though completion order varies.
    assert [r.index for r in report.results] == [0, 1]
    # The failed job reports its timing too (it ran, it just raised).
    assert bad.pid > 0
