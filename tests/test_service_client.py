"""Client SDK behavior that the server tests don't cover: backoff
jitter bounds, reconnect-and-resend, packet-shape normalization, the
async client, and the load generator's report accounting.

Reconnect tests use a scripted fake server (plain sockets, one thread)
so the failure sequence is deterministic; everything else runs against
the real service on an ephemeral port.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import threading

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS
from repro.service import protocol
from repro.service.client import (
    AsyncServiceClient,
    BackoffPolicy,
    ServiceClient,
    ServiceUnavailable,
    SubmitResult,
    _packet_obj,
    iter_trace_packets,
)
from repro.service.loadgen import LoadgenReport, replay_trace
from repro.service.server import ServiceConfig, start_service_thread
from repro.traces.frame import as_frame
from repro.traces.records import SnapshotRow


# ---------------------------------------------------------------------------
# BackoffPolicy
# ---------------------------------------------------------------------------


def test_backoff_grows_exponentially_then_caps():
    policy = BackoffPolicy(base=0.1, factor=2.0, max_delay=0.5, jitter=0.0)
    rng = random.Random(0)
    delays = [policy.delay(n, rng) for n in range(6)]
    assert delays[:3] == pytest.approx([0.1, 0.2, 0.4])
    assert delays[3:] == pytest.approx([0.5, 0.5, 0.5])  # capped


def test_backoff_jitter_stays_within_band():
    policy = BackoffPolicy(base=0.1, factor=2.0, max_delay=10.0, jitter=0.5)
    rng = random.Random(1234)
    for attempt in range(5):
        raw = min(policy.base * policy.factor ** attempt, policy.max_delay)
        samples = [policy.delay(attempt, rng) for _ in range(200)]
        assert min(samples) >= raw * 0.5
        assert max(samples) <= raw * 1.5
        # Jitter actually spreads the samples (de-synchronizes a fleet).
        assert max(samples) - min(samples) > raw * 0.5


def test_backoff_is_deterministic_under_seeded_rng():
    policy = BackoffPolicy()
    a = [policy.delay(n, random.Random(7)) for n in range(4)]
    b = [policy.delay(n, random.Random(7)) for n in range(4)]
    assert a == b


# ---------------------------------------------------------------------------
# Packet normalization
# ---------------------------------------------------------------------------


def test_packet_obj_accepts_all_three_shapes():
    values = np.linspace(0.0, 1.0, NUM_METRICS)
    row = SnapshotRow(node_id=3, epoch=2, generated_at=100.0,
                      received_at=101.5, values=values)
    from_row = _packet_obj(row)
    from_tuple = _packet_obj((3, 2, 100.0, values))
    passthrough = {"node_id": 3, "epoch": 2, "generated_at": 100.0,
                   "values": values.tolist()}
    assert _packet_obj(passthrough) is passthrough
    assert from_row["received_at"] == 101.5
    for obj in (from_row, from_tuple):
        assert (obj["node_id"], obj["epoch"], obj["generated_at"]) == (3, 2, 100.0)
        assert obj["values"] == values.tolist()
        # Wire objects must be JSON-serializable as-is.
        json.dumps(obj)


def test_all_shapes_parse_back_to_the_same_session_packet():
    values = np.linspace(0.0, 1.0, NUM_METRICS)
    row = SnapshotRow(node_id=3, epoch=2, generated_at=100.0,
                      received_at=101.5, values=values)
    parsed = [
        protocol.parse_packet(_packet_obj(p))
        for p in (row, (3, 2, 100.0, values))
    ]
    for node_id, epoch, generated_at, got in parsed:
        assert (node_id, epoch, generated_at) == (3, 2, 100.0)
        assert np.array_equal(got, values)


def test_submit_empty_batch_is_a_local_noop():
    client = ServiceClient(port=1)  # never connected
    assert client.submit("city-a", []) == SubmitResult(accepted=0, queued=0)


# ---------------------------------------------------------------------------
# Reconnect behavior (scripted fake server)
# ---------------------------------------------------------------------------


class _FlakySink(threading.Thread):
    """Accepts connections; drops the first ``drop_first`` mid-request.

    Every connection gets a hello.  The first ``drop_first`` connections
    read one line and close without replying — exactly the ack-never-
    arrived case the SDK must recover from by reconnecting and resending.
    Later connections ack every ingest normally.
    """

    def __init__(self, drop_first: int = 1):
        super().__init__(daemon=True)
        self.drop_first = drop_first
        self.seen_batches = []
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]
        self._accepted = 0
        self.start()

    def run(self):
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            self._accepted += 1
            drop = self._accepted <= self.drop_first
            with conn:
                file = conn.makefile("rwb")
                file.write(protocol.encode(protocol.hello()))
                file.flush()
                while True:
                    line = file.readline()
                    if not line:
                        break
                    msg = json.loads(line)
                    self.seen_batches.append(
                        [p["epoch"] for p in msg["packets"]]
                    )
                    if drop:
                        break  # close without acking
                    file.write(protocol.encode(protocol.ack(
                        msg["seq"], accepted=len(msg["packets"]),
                        queued=0,
                    )))
                    file.flush()

    def close(self):
        self.listener.close()


def _fast_backoff():
    return BackoffPolicy(base=0.001, factor=1.0, max_delay=0.001,
                         jitter=0.0, max_attempts=4)


def _packets(n, epoch0=0):
    return [
        {"node_id": 1, "epoch": epoch0 + i, "generated_at": 100.0 + i,
         "values": [0.0] * NUM_METRICS}
        for i in range(n)
    ]


def test_reconnect_resends_unacked_batch():
    sink = _FlakySink(drop_first=1)
    try:
        client = ServiceClient(port=sink.port, backoff=_fast_backoff(),
                               rng=random.Random(0))
        result = client.submit("city-a", _packets(3))
        client.close()
    finally:
        sink.close()
    assert result.accepted == 3
    assert result.reconnects >= 1
    # The batch went over the wire twice: once dropped, once acked.
    assert sink.seen_batches == [[0, 1, 2], [0, 1, 2]]


def test_reconnect_survives_several_consecutive_drops():
    sink = _FlakySink(drop_first=3)
    try:
        client = ServiceClient(port=sink.port, backoff=_fast_backoff(),
                               rng=random.Random(0))
        result = client.submit("city-a", _packets(2))
        client.close()
    finally:
        sink.close()
    assert result.accepted == 2
    assert result.reconnects >= 3
    assert len(sink.seen_batches) == 4


def test_unreachable_port_exhausts_backoff():
    # A bound-then-closed socket guarantees nothing is listening there.
    probe = socket.create_server(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    client = ServiceClient(port=port, backoff=_fast_backoff(),
                           rng=random.Random(0), timeout=0.2)
    with pytest.raises(ServiceUnavailable):
        client._ensure_connected()


# ---------------------------------------------------------------------------
# Async client + loadgen against the real service
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_frame(testbed_trace):
    frame = as_frame(testbed_trace)
    lo = float(frame.generated_at.min())
    hi = float(frame.generated_at.max())
    return frame.window(0.0, lo + 0.5 * (hi - lo))


@pytest.fixture()
def service(testbed_tool):
    with start_service_thread(
        testbed_tool, ServiceConfig(port=0, http_port=0)
    ) as handle:
        yield handle


def test_async_client_submits_and_streams_events(testbed_tool, small_frame):
    packets = list(iter_trace_packets(small_frame))
    reference = []
    for update in testbed_tool.diagnose_stream(small_frame):
        reference.extend(protocol.incident_event_obj(e) for e in update.events)
    assert reference, "window produced no incident events"

    handle = start_service_thread(
        testbed_tool, ServiceConfig(port=0, http_port=0)
    )

    async def scenario():
        sub = AsyncServiceClient(port=handle.port)
        collected = []

        async def collect():
            async for event in sub.events("async-dep"):
                collected.append(event)

        collector = asyncio.ensure_future(collect())
        # The subscribe handshake lives inside the generator's first
        # step; wait until the server actually registered it so no
        # early event can slip past.
        for _ in range(500):
            n = handle.run_sync(
                lambda: len(handle.service.shard("async-dep").subscribers)
            )
            if n:
                break
            await asyncio.sleep(0.01)
        else:
            raise AssertionError("subscription never registered")

        async with AsyncServiceClient(port=handle.port) as client:
            result = await client.submit("async-dep", packets)
        # A graceful stop drains the shard and flush-closes incidents,
        # then closes the subscriber's connection, ending collect().
        await asyncio.get_event_loop().run_in_executor(None, handle.stop)
        await collector
        await sub.aclose()
        return result, collected

    result, events = asyncio.run(scenario())
    assert result.accepted == len(packets)
    # Differential through the async path too: bit-identical events.
    assert events == reference


def test_loadgen_report_accounts_for_every_packet(service, small_frame):
    with ServiceClient(port=service.port) as client:
        report = replay_trace(client, "lg", small_frame, batch_size=100)
    assert isinstance(report, LoadgenReport)
    assert report.packets_sent == len(small_frame)
    assert report.batches_sent == -(-len(small_frame) // 100)  # ceil div
    assert report.throughput_pps > 0
    assert report.backpressure_retries == 0
    assert report.reconnects == 0
    assert report.speed is None
    assert "flat out" in report.to_text()
    assert f"{report.packets_sent} packets" in report.to_text()


def test_loadgen_pacing_slows_the_replay(service, small_frame):
    # Pick a speed that makes the *last* batch due ~0.4s in; a paced
    # replay must then take at least that long (flat out takes ~ms).
    batch = 16
    packets = list(iter_trace_packets(small_frame))
    n_batches = -(-len(packets) // batch)
    assert n_batches >= 2
    trace_span = packets[(n_batches - 1) * batch][2] - packets[0][2]
    assert trace_span > 0
    speed = trace_span / 0.4
    with ServiceClient(port=service.port) as client:
        report = replay_trace(client, "paced", small_frame, speed=speed,
                              batch_size=batch)
    assert report.packets_sent == len(packets)
    assert report.wall_s >= 0.35
    assert "x trace time" in report.to_text()


def test_loadgen_max_packets_truncates(service, small_frame):
    with ServiceClient(port=service.port) as client:
        report = replay_trace(client, "lg-cap", small_frame,
                              batch_size=32, max_packets=64)
    assert report.packets_sent == 64
    assert report.batches_sent == 2


def test_loadgen_rejects_bad_knobs(service, small_frame):
    client = ServiceClient(port=service.port)
    with pytest.raises(ValueError, match="batch_size"):
        replay_trace(client, "x", small_frame, batch_size=0)
    with pytest.raises(ValueError, match="speed"):
        replay_trace(client, "x", small_frame, speed=0.0)


def test_loadgen_main_writes_report(service, small_frame, tmp_path, capsys):
    from repro.service.loadgen import main
    from repro.traces.io import save_frame_jsonl

    trace_path = tmp_path / "trace.jsonl"
    save_frame_jsonl(small_frame, trace_path)
    report_path = tmp_path / "report.json"
    rc = main([
        str(trace_path), "--port", str(service.port),
        "--deployment", "ci", "--batch", "128",
        "--report", str(report_path),
    ])
    assert rc == 0
    assert "pkt/s" in capsys.readouterr().out
    report = json.loads(report_path.read_text())
    assert report["deployment"] == "ci"
    assert report["packets_sent"] == len(small_frame)
