"""Tests for per-cause PRR cost estimation."""

import numpy as np
import pytest

from repro.analysis.performance import estimate_cause_costs
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states


@pytest.fixture(scope="module")
def fitted(multicause_trace):
    tool = VN2(VN2Config(rank=12)).fit(multicause_trace)
    model = estimate_cause_costs(tool, multicause_trace, bin_seconds=600.0)
    return tool, model


def test_costs_nonnegative(fitted):
    _tool, model = fitted
    assert all(imp.cost >= 0 for imp in model.impacts)


def test_model_explains_some_deficit(fitted):
    _tool, model = fitted
    # the fault window visibly depresses PRR; the cause strengths must
    # explain a nontrivial share of that
    assert model.r_squared > 0.2


def test_baseline_is_healthy(fitted):
    _tool, model = fitted
    assert 0.7 <= model.baseline_prr <= 1.0


def test_impacts_sorted_by_mean_impact(fitted):
    _tool, model = fitted
    products = [imp.cost * imp.mean_strength for imp in model.impacts]
    assert products == sorted(products, reverse=True)


def test_predict_prr_monotone_in_strength(fitted):
    tool, model = fitted
    rank = tool.rank_
    quiet = np.zeros(rank)
    # load the cause with the largest cost
    heavy = np.zeros(rank)
    strongest = max(model.impacts, key=lambda i: i.cost)
    heavy[strongest.cause_index] = 1.0
    assert model.predict_prr(quiet) == pytest.approx(model.baseline_prr)
    if strongest.cost > 0:
        assert model.predict_prr(heavy) < model.predict_prr(quiet)


def test_predictions_bounded(fitted):
    tool, model = fitted
    huge = np.full(tool.rank_, 100.0)
    assert 0.0 <= model.predict_prr(huge) <= 1.0
    assert 0.0 <= model.predict_deficit(huge) <= 1.0


def test_to_text_renders(fitted):
    _tool, model = fitted
    text = model.to_text()
    assert "PRR cost/unit" in text
    assert "R^2" in text


def test_rejects_too_few_bins(fitted, multicause_trace):
    tool, _model = fitted
    with pytest.raises(ValueError):
        estimate_cause_costs(tool, multicause_trace, bin_seconds=10**9)
