"""Unit tests for topologies."""

import numpy as np
import pytest

from repro.simnet.topology import Topology, grid_topology, random_geometric_topology


def test_grid_node_count():
    topo = grid_topology(rows=9, cols=5)
    assert len(topo) == 45
    assert topo.sink_id == 0


def test_grid_positions_are_spaced():
    topo = grid_topology(rows=2, cols=3, spacing=10.0)
    assert topo.positions[0] == (0.0, 0.0)
    assert topo.positions[1] == (10.0, 0.0)
    assert topo.positions[3] == (0.0, 10.0)


def test_grid_rejects_empty():
    with pytest.raises(ValueError):
        grid_topology(rows=0, cols=3)


def test_grid_jitter_requires_rng():
    with pytest.raises(ValueError):
        grid_topology(jitter=0.1)


def test_grid_jitter_moves_nodes():
    rng = np.random.default_rng(0)
    jittered = grid_topology(rows=3, cols=3, spacing=10.0, jitter=0.2, rng=rng)
    straight = grid_topology(rows=3, cols=3, spacing=10.0)
    moved = [
        jittered.positions[n] != straight.positions[n] for n in straight.node_ids
    ]
    assert any(moved)


def test_sensor_ids_exclude_sink():
    topo = grid_topology(rows=2, cols=2)
    assert topo.sink_id not in topo.sensor_ids
    assert len(topo.sensor_ids) == 3


def test_distance_symmetric():
    topo = grid_topology(rows=2, cols=2, spacing=3.0)
    assert topo.distance(0, 3) == pytest.approx(topo.distance(3, 0))
    assert topo.distance(0, 1) == pytest.approx(3.0)


def test_neighbors_within_radius():
    topo = grid_topology(rows=3, cols=3, spacing=10.0)
    center = 4
    close = topo.neighbors_within(center, 10.5)
    assert sorted(close) == [1, 3, 5, 7]


def test_is_connected():
    topo = grid_topology(rows=3, cols=3, spacing=10.0)
    assert topo.is_connected(10.5)
    assert not topo.is_connected(9.0)


def test_sink_must_exist():
    with pytest.raises(ValueError):
        Topology(positions={1: (0.0, 0.0)}, sink_id=0)


def test_random_geometric_is_connected():
    rng = np.random.default_rng(1)
    topo = random_geometric_topology(
        n_nodes=40, area=(300.0, 200.0), comm_radius=90.0, rng=rng
    )
    assert len(topo) == 40
    assert topo.is_connected(90.0)


def test_random_geometric_sink_near_west_edge():
    rng = np.random.default_rng(1)
    topo = random_geometric_topology(
        n_nodes=30, area=(300.0, 200.0), comm_radius=90.0, rng=rng
    )
    x, y = topo.positions[topo.sink_id]
    assert x < 30.0


def test_random_geometric_requires_rng():
    with pytest.raises(ValueError):
        random_geometric_topology(n_nodes=10)


def test_random_geometric_impossible_raises():
    rng = np.random.default_rng(1)
    with pytest.raises(RuntimeError):
        random_geometric_topology(
            n_nodes=5, area=(10000.0, 10000.0), comm_radius=10.0, rng=rng,
            max_tries=3,
        )
