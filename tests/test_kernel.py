"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simnet.kernel import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now() == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run_until(10.0)
    assert fired == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, lambda n=name: fired.append(n))
    sim.run_until(1.0)
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now()))
    sim.run_until(100.0)
    assert seen == [5.0]
    assert sim.now() == 100.0


def test_events_beyond_horizon_do_not_fire():
    sim = Simulator()
    fired = []
    sim.schedule(50.0, lambda: fired.append(1))
    sim.run_until(49.999)
    assert fired == []
    sim.run_until(50.0)
    assert fired == [1]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run_until(2.0)
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run_until(2.0)  # must not raise


def test_events_scheduled_during_run_fire_same_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run_until(5.0)
    assert fired == ["first", "second"]


def test_negative_delay_clamps_to_now():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule(-5.0, lambda: fired.append(sim.now())))
    sim.run_until(2.0)
    assert fired == [1.0]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.run_until(10.0)
    with pytest.raises(ValueError):
        sim.schedule_at(5.0, lambda: None)


def test_run_duration_is_relative():
    sim = Simulator()
    sim.run(5.0)
    sim.run(5.0)
    assert sim.now() == 10.0


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run_until(2.0)
    assert sim.events_processed == 7


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.pending() == 1


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        with pytest.raises(RuntimeError):
            sim.run_until(100.0)

    sim.schedule(1.0, reenter)
    sim.run_until(2.0)
