"""Zero-downtime model rotation across the sink cluster.

The acceptance criteria of the model-lifecycle PR live here:

* **Inproc differential**: rotating a served model mid-stream through
  ``POST /model`` produces the exact event stream of a local
  :class:`~repro.core.streaming.StreamingDiagnosisSession` replay that
  calls :meth:`set_model` at the same packet boundary — no dropped,
  duplicated or reordered incident events across the swap.
* **Pool differential**: the same holds with three worker processes,
  every deployment swapping at the same boundary.
* **Chaos**: SIGKILL one worker and rotate while its death is still
  being noticed.  The rotation must complete (the gather resolves when
  the dead worker is pruned), deployments on surviving workers stay
  bit-identical, and the orphaned deployment is adopted with no event
  loss and no cross-deployment bleed.

Workers are real forked processes; rotation goes through the real HTTP
operator endpoint with the model loaded from disk, exactly as
``vn2 model rotate`` does it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.pipeline import VN2, VN2Config
from repro.core.streaming import StreamingDiagnosisSession, iter_packets
from repro.service import protocol
from repro.service.backends import HashRing
from repro.service.client import ServiceClient, http_get_json, http_post_json
from repro.service.server import ServiceConfig, start_service_thread
from repro.traces.frame import as_frame


@pytest.fixture(scope="module")
def testbed_frame(testbed_trace):
    return as_frame(testbed_trace)


@pytest.fixture(scope="module")
def model_b_path(testbed_trace, tmp_path_factory):
    """A second model on the same training hour, saved to disk.

    A different sweep budget lands on a different Ψ, so the rotation is
    observable: the two models diagnose the same packets differently.
    """
    from repro.analysis.testbed_experiments import train_test_split

    train, _ = train_test_split(testbed_trace)
    tool = VN2(
        VN2Config(rank=8, filter_exceptions=False, nmf_iterations=140)
    ).fit(train)
    path = tmp_path_factory.mktemp("models") / "model_b.npz"
    tool.save(str(path))
    return str(path)


@pytest.fixture(scope="module")
def tool_b(model_b_path):
    # Load from disk so the reference diagnoses with byte-for-byte the
    # same artifact the server rotates in.
    return VN2.load(model_b_path)


def _rotated_reference(tool_a, tool_b, packets, boundary):
    """Local replay: model A to ``boundary`` packets, model B after."""
    session = StreamingDiagnosisSession(tool_a)
    events = []
    for update in session.process(packets[:boundary]):
        events.extend(protocol.incident_event_obj(e) for e in update.events)
    cut = session.set_model(tool_b)
    assert cut["packets"] == boundary
    for update in session.process(packets[boundary:]):
        events.extend(protocol.incident_event_obj(e) for e in update.events)
    events.extend(protocol.incident_event_obj(e) for e in session.finish())
    return events


def _deployments_per_worker(n_workers: int, per_worker: int):
    """Deployment names guaranteed to land on each worker (see the
    cluster tests — placement is precomputed, never sampled)."""
    ring = HashRing([f"w{i}" for i in range(n_workers)])
    placed = {f"w{i}": [] for i in range(n_workers)}
    i = 0
    while any(len(names) < per_worker for names in placed.values()):
        name = f"dep-{i}"
        owner = ring.lookup(name)
        if len(placed[owner]) < per_worker:
            placed[owner].append(name)
        i += 1
    return placed


class _Subscriber(threading.Thread):
    """Subscribe synchronously, then collect messages until close."""

    def __init__(self, port: int, deployment: str):
        super().__init__(daemon=True)
        self.deployment = deployment
        self.client = ServiceClient(port=port)
        self.client._ensure_connected()
        reply = self.client._roundtrip(protocol.subscribe(deployment, 1))
        reply.pop("_reconnects", None)
        assert reply == protocol.subscribed(1, deployment)
        self.messages = []
        self.start()

    @property
    def events(self):
        return [m["event"] for m in self.messages]

    def run(self):
        while True:
            try:
                message = self.client._read_message()
            except (ConnectionError, OSError):
                return
            if message.get("type") == "event":
                self.messages.append(message)


def _wait_drained(handle) -> None:
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        doc = http_get_json(handle.host, handle.http_port, "/metrics")
        if doc["totals"]["queue_depth_packets"] == 0:
            return
        time.sleep(0.02)
    raise AssertionError("queues never drained")


def _submit(client, names, packets) -> None:
    if isinstance(names, str):
        names = [names]
    for start in range(0, len(packets), 128):
        batch = packets[start:start + 128]
        for name in names:
            client.submit(name, batch)


def test_inproc_rotation_matches_set_model_replay(
    testbed_tool, tool_b, model_b_path, testbed_frame
):
    packets = list(iter_packets(testbed_frame))
    half = len(packets) // 2
    reference = _rotated_reference(testbed_tool, tool_b, packets, half)
    assert reference, "rotated replay produced no incident events"
    # the swap must actually change behaviour for the differential to
    # mean anything
    assert reference != _rotated_reference(
        testbed_tool, testbed_tool, packets, half
    )

    config = ServiceConfig(port=0, http_port=0)
    with start_service_thread(testbed_tool, config) as handle:
        subscriber = _Subscriber(handle.port, "testbed")
        with ServiceClient(port=handle.port) as client:
            _submit(client, "testbed", packets[:half])
            _wait_drained(handle)

            result = http_post_json(
                handle.host, handle.http_port, "/model",
                {"path": model_b_path},
            )
            assert result["model_version"] == tool_b.model_version
            assert result["previous"] == testbed_tool.model_version
            assert result["boundaries"]["testbed"]["packets"] == half

            health = http_get_json(handle.host, handle.http_port, "/health")
            assert health["model_version"] == tool_b.model_version

            _submit(client, "testbed", packets[half:])
        handle.stop(drain=True)
    subscriber.join(timeout=10.0)

    # Bit-identical across the live swap: nothing dropped, duplicated
    # or reordered.
    assert subscriber.events == reference


def test_pool_rotation_differential_three_workers(
    testbed_tool, tool_b, model_b_path, testbed_frame
):
    packets = list(iter_packets(testbed_frame))
    half = len(packets) // 2
    reference = _rotated_reference(testbed_tool, tool_b, packets, half)

    placed = _deployments_per_worker(3, 1)
    names = [placed[f"w{i}"][0] for i in range(3)]

    config = ServiceConfig(port=0, http_port=0, workers=3, backend="pool",
                           heartbeat_s=0.1)
    with start_service_thread(testbed_tool, config) as handle:
        subs = {name: _Subscriber(handle.port, name) for name in names}
        with ServiceClient(port=handle.port) as client:
            _submit(client, names, packets[:half])
            _wait_drained(handle)

            result = http_post_json(
                handle.host, handle.http_port, "/model",
                {"path": model_b_path},
            )
            # every deployment on every worker swapped at the same
            # packet boundary
            for name in names:
                assert result["boundaries"][name]["packets"] == half

            _submit(client, names, packets[half:])
        _wait_drained(handle)

        doc = http_get_json(handle.host, handle.http_port, "/metrics")
        workers_used = {doc["deployments"][n]["worker"] for n in names}
        assert workers_used == {"w0", "w1", "w2"}

        handle.stop(drain=True)
    for sub in subs.values():
        sub.join(timeout=10.0)

    # Three deployments on three processes, one mid-stream swap each:
    # three bit-exact copies of the rotated reference stream.
    for name in names:
        assert subs[name].events == reference


def test_rotation_with_worker_kill_no_loss_no_bleed(
    testbed_tool, tool_b, model_b_path, testbed_frame
):
    packets = list(iter_packets(testbed_frame))
    half = len(packets) // 2
    reference = _rotated_reference(testbed_tool, tool_b, packets, half)

    placed = _deployments_per_worker(3, 1)
    chaos = placed["w0"][0]
    stable = [placed["w1"][0], placed["w2"][0]]
    names = [chaos] + stable

    config = ServiceConfig(port=0, http_port=0, workers=3, backend="pool",
                           heartbeat_s=0.1)
    with start_service_thread(testbed_tool, config) as handle:
        backend = handle.service.backend
        subs = {name: _Subscriber(handle.port, name) for name in names}
        with ServiceClient(port=handle.port) as client:
            _submit(client, names, packets[:half])
            _wait_drained(handle)

            # SIGKILL w0, then rotate before the front door has noticed:
            # the model_update to the corpse is discarded and the gather
            # must resolve when the death is detected, not time out.
            backend.kill_worker("w0")
            result = http_post_json(
                handle.host, handle.http_port, "/model",
                {"path": model_b_path},
            )
            assert result["model_version"] == tool_b.model_version
            for name in stable:
                assert result["boundaries"][name]["packets"] == half

            # Wait for the handoff machinery to mark w0 dead.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                health = http_get_json(handle.host, handle.http_port,
                                       "/health")
                alive = {w["id"]: w["alive"] for w in health["workers"]}
                if not alive["w0"]:
                    break
                time.sleep(0.05)
            assert alive == {"w0": False, "w1": True, "w2": True}
            assert health["model_version"] == tool_b.model_version

            _submit(client, names, packets[half:])
        _wait_drained(handle)

        doc = http_get_json(handle.host, handle.http_port, "/metrics")
        shard = doc["deployments"][chaos]
        assert shard["worker"] in ("w1", "w2")  # adopted by a survivor
        assert shard["queue_depth_packets"] == 0  # every batch got acked
        assert shard["packets"] >= len(packets) - half

        handle.stop(drain=True)
    for sub in subs.values():
        sub.join(timeout=10.0)

    # Deployments on surviving workers never noticed either the death or
    # the pruned gather: bit-identical rotated streams.
    for name in stable:
        assert subs[name].events == reference
    # The orphaned deployment was adopted mid-rotation: its fresh session
    # on the survivor serves model B.  At-least-once, not bit-identity —
    # but nothing lost and nothing bled across deployments.
    assert subs[chaos].messages, "chaos subscriber saw no events"
    for name, sub in subs.items():
        assert all(m["deployment"] == name for m in sub.messages)
