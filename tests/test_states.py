"""Tests for network-state construction."""

import numpy as np
import pytest

from repro.core.states import StateMatrix, StateProvenance, build_states
from repro.metrics.catalog import NUM_METRICS
from repro.traces.records import SnapshotRow, Trace


def make_trace(values_by_node):
    rows = []
    for node_id, values in values_by_node.items():
        for epoch, vec in enumerate(values):
            rows.append(
                SnapshotRow(
                    node_id=node_id,
                    epoch=epoch,
                    generated_at=epoch * 10.0,
                    received_at=epoch * 10.0 + 1,
                    values=np.full(NUM_METRICS, float(vec)),
                )
            )
    return Trace(rows=rows)


def test_differencing():
    trace = make_trace({1: [0, 2, 5]})
    states = build_states(trace)
    assert len(states) == 2
    assert states.values[0][0] == pytest.approx(2.0)
    assert states.values[1][0] == pytest.approx(3.0)


def test_provenance_tracks_epochs_and_times():
    trace = make_trace({1: [0, 2]})
    states = build_states(trace)
    p = states.provenance[0]
    assert (p.epoch_from, p.epoch_to) == (0, 1)
    assert (p.time_from, p.time_to) == (0.0, 10.0)


def test_nodes_do_not_cross():
    trace = make_trace({1: [0, 10], 2: [100, 101]})
    states = build_states(trace)
    assert len(states) == 2
    deltas = sorted(states.values[:, 0])
    assert deltas == [1.0, 10.0]


def test_epoch_gap_filtering():
    rows = [
        SnapshotRow(1, 0, 0.0, 1.0, np.zeros(NUM_METRICS)),
        SnapshotRow(1, 5, 50.0, 51.0, np.ones(NUM_METRICS)),
    ]
    trace = Trace(rows=rows)
    assert len(build_states(trace)) == 1
    assert len(build_states(trace, max_epoch_gap=2)) == 0


def test_per_epoch_rate():
    rows = [
        SnapshotRow(1, 0, 0.0, 1.0, np.zeros(NUM_METRICS)),
        SnapshotRow(1, 4, 40.0, 41.0, np.full(NUM_METRICS, 8.0)),
    ]
    trace = Trace(rows=rows)
    states = build_states(trace, per_epoch_rate=True)
    assert states.values[0][0] == pytest.approx(2.0)


def test_empty_trace():
    states = build_states(Trace(rows=[]))
    assert len(states) == 0


def test_single_snapshot_node_produces_no_state():
    trace = make_trace({1: [5]})
    assert len(build_states(trace)) == 0


def test_select_and_for_node_and_window():
    trace = make_trace({1: [0, 1, 2], 2: [0, 5, 9]})
    states = build_states(trace)
    node2 = states.for_node(2)
    assert len(node2) == 2
    assert all(p.node_id == 2 for p in node2.provenance)
    picked = states.select([0, 2])
    assert len(picked) == 2
    windowed = states.in_window(5.0, 15.0)
    assert all(5.0 <= p.time_to < 15.0 for p in windowed.provenance)


def test_state_matrix_validation():
    with pytest.raises(ValueError):
        StateMatrix(values=np.zeros((2, 7)), provenance=[])
    with pytest.raises(ValueError):
        StateMatrix(values=np.zeros((2, NUM_METRICS)), provenance=[])
