"""Chaos engine tests: DSL round-trip, fault behaviour, preset contracts.

Four layers:

* **DSL** — hypothesis round-trip of scenarios through their dict/JSON
  form, cache-key stability, static validation.
* **Fault primitives** — each new chaos hazard leaves its intended mark on
  a small grid network (same harness as ``test_faults``).
* **Presets** — every preset is a pure function of ``(name, seed, scale)``,
  runs serial-vs-parallel bit-identically through the runner, and
  ``citysee-mix`` is column-for-column the plain CitySee generator.
* **Scorecard** — per-family rows, episode detection and gate checks.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.scorecard import FamilyScore, score_scenario_frame
from repro.chaos import (
    PRESET_NAMES,
    ChaosScenario,
    build_preset,
    fault_from_dict,
    fault_to_dict,
    generate_chaos_frame,
    validate_scenario,
)
from repro.runner import chaos_preset_jobs, run_jobs
from repro.simnet.faults import (
    BatteryBrownout,
    ClockSkew,
    CorrelatedInterference,
    DutyCycle,
    FaultInjector,
    FirmwareSkew,
    GatewayFailure,
    NodeFailure,
    NodeMove,
)
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology
from repro.traces.citysee import CitySeeProfile, generate_citysee_frame
from tests.test_runner_differential import assert_columns_equal

N_TEST_JOBS = int(os.environ.get("VN2_TEST_JOBS", "4"))


# ----------------------------------------------------------------------
# DSL round-trip (hypothesis)
# ----------------------------------------------------------------------

_times = st.floats(
    min_value=0.0, max_value=2e5, allow_nan=False, allow_infinity=False
)
_coords = st.tuples(
    st.floats(min_value=0.0, max_value=800.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=800.0, allow_nan=False),
)
_node_ids = st.integers(min_value=1, max_value=29)
_windows = st.tuples(_times, _times).map(sorted).map(tuple).filter(
    lambda w: w[0] < w[1]
)

_fault_specs = st.one_of(
    st.builds(NodeFailure, node_id=_node_ids, at=_times),
    st.builds(
        ClockSkew,
        node_id=_node_ids,
        start=_times,
        end=_times,
        extra_ppm=st.floats(min_value=-4e5, max_value=4e5, allow_nan=False),
    ),
    st.builds(
        BatteryBrownout,
        node_id=_node_ids,
        start=_times,
        end=_times,
        sag_v=st.floats(min_value=0.01, max_value=0.3, allow_nan=False),
        sags=st.integers(min_value=1, max_value=4),
    ),
    st.builds(
        CorrelatedInterference,
        centers=st.lists(_coords, min_size=1, max_size=3).map(tuple),
        radius=st.floats(min_value=1.0, max_value=300.0, allow_nan=False),
        bursts=st.lists(_windows, min_size=1, max_size=3).map(tuple),
    ),
    st.builds(
        FirmwareSkew,
        node_ids=st.lists(_node_ids, min_size=1, max_size=4, unique=True).map(tuple),
        metrics=st.sampled_from(
            [("temperature", "voltage"), ("neighbor_num", "rssi_1", "etx_1")]
        ),
        start=_times,
        end=_times,
    ),
    st.builds(
        DutyCycle,
        node_id=_node_ids,
        start=_times,
        end=_times,
        period_s=st.floats(min_value=60.0, max_value=7200.0, allow_nan=False),
        on_fraction=st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
    ),
    st.builds(NodeMove, node_id=_node_ids, at=_times, to=_coords),
    st.builds(
        GatewayFailure,
        gateway_id=_node_ids,
        at=_times,
        recover_at=st.one_of(st.none(), _times),
    ),
)


@st.composite
def _scenarios(draw) -> ChaosScenario:
    return ChaosScenario(
        name=draw(st.sampled_from(["s1", "chaos-x", "mixed_bag"])),
        profile=CitySeeProfile.tiny(seed=draw(st.integers(0, 2**31 - 1))),
        background=draw(st.booleans()),
        episode=draw(st.booleans()),
        episode_days=draw(
            st.tuples(
                st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
                st.floats(min_value=3.0, max_value=8.0, allow_nan=False),
            )
        ),
        faults=tuple(draw(st.lists(_fault_specs, max_size=4))),
        gateway_ids=tuple(
            draw(st.lists(_node_ids, max_size=2, unique=True))
        ),
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenario=_scenarios())
def test_scenario_roundtrips_through_json(scenario):
    payload = json.loads(json.dumps(scenario.to_dict()))
    restored = ChaosScenario.from_dict(payload)
    assert restored == scenario
    assert restored.cache_key() == scenario.cache_key()
    assert restored.canonical_json() == scenario.canonical_json()


@settings(max_examples=40, deadline=None)
@given(fault=_fault_specs)
def test_fault_roundtrips_through_dict(fault):
    assert fault_from_dict(fault_to_dict(fault)) == fault


def test_fault_from_dict_rejects_junk():
    with pytest.raises(ValueError, match="unknown fault type"):
        fault_from_dict({"type": "gremlins", "node_id": 3})
    with pytest.raises(ValueError, match="bad node_failure spec"):
        fault_from_dict({"type": "node_failure", "nonsense": 1})


def test_cache_key_tracks_content():
    base = build_preset("clock-storm", seed=7, scale="tiny")
    again = build_preset("clock-storm", seed=7, scale="tiny")
    other_seed = build_preset("clock-storm", seed=8, scale="tiny")
    assert base.cache_key() == again.cache_key()
    assert base.cache_key() != other_seed.cache_key()


def test_validate_scenario_flags_static_problems():
    profile = CitySeeProfile.tiny(seed=7)
    bad = ChaosScenario(
        name="bad",
        profile=profile,
        faults=(
            ClockSkew(node_id=3, start=profile.duration_s() + 10.0,
                      end=profile.duration_s() + 20.0),
            BatteryBrownout(node_id=4, start=500.0, end=400.0),
            GatewayFailure(gateway_id=17, at=600.0),
        ),
    )
    problems = validate_scenario(bad)
    assert len(problems) == 3
    assert any("outside" in p for p in problems)
    assert any("empty" in p for p in problems)
    assert any("gateway" in p for p in problems)
    assert validate_scenario(build_preset("flaky-field", seed=7, scale="tiny")) == []
    with pytest.raises(ValueError, match="invalid scenario"):
        generate_chaos_frame(bad, use_cache=False)


# ----------------------------------------------------------------------
# fault primitive behaviour (small grid harness, as in test_faults)
# ----------------------------------------------------------------------


def fresh_network(seed=3, **config):
    topo = grid_topology(rows=5, cols=5, spacing=9.0)
    return Network(topo, NetworkConfig(
        report_period_s=120.0, beacon_min_s=10.0, beacon_max_s=120.0,
        seed=seed, radio=RadioParams(tx_power_dbm=-10.0), max_range_m=40.0,
        **config,
    ))


def test_battery_brownout_sags_and_recovers():
    net = fresh_network()
    FaultInjector([
        BatteryBrownout(12, start=600.0, end=1200.0, sag_v=0.15, sags=2),
    ]).install(net)
    battery = net.nodes[12].hardware.battery
    net.run_until(700.0)  # first sag segment [600, 800)
    assert battery.brownout_v == pytest.approx(0.15)
    assert battery.drain_multiplier > 1.0
    assert not battery.is_dead()  # droop alone must not kill the node
    net.run_until(900.0)  # recover segment [800, 1000)
    assert battery.brownout_v == 0.0
    net.run_until(1100.0)  # second sag segment [1000, 1200)
    assert battery.brownout_v == pytest.approx(0.15)
    net.run_until(1400.0)  # past end: fully recovered
    assert battery.brownout_v == 0.0
    assert battery.drain_multiplier == 1.0
    assert [g.kind for g in net.ground_truth] == ["battery_brownout"]


def test_clock_skew_changes_report_cadence():
    baseline = fresh_network()
    baseline.run(3600.0)
    skewed = fresh_network()
    FaultInjector([
        ClockSkew(12, start=600.0, end=3600.0, extra_ppm=500000.0),
    ]).install(skewed)
    skewed.run(3600.0)
    # +50% period from t=600 -> visibly fewer self reports than baseline.
    n_base = baseline.nodes[12].counters.self_transmit_counter
    n_skew = skewed.nodes[12].counters.self_transmit_counter
    assert n_skew < n_base
    assert skewed.nodes[12].hardware.skew_extra_ppm == 0.0  # cleared at end


def test_clock_skew_floor_keeps_period_positive():
    net = fresh_network()
    hw = net.nodes[12].hardware
    hw.skew_extra_ppm = -5e6  # absurd negative drift
    assert hw.clock_skew(25.0) > 0.0


def test_duty_cycle_sleeps_then_wakes_with_state_kept():
    net = fresh_network()
    FaultInjector([
        DutyCycle(12, start=600.0, end=1800.0, period_s=600.0, on_fraction=0.5),
    ]).install(net)
    net.run_until(750.0)  # inside first off-phase [600, 900)
    node = net.nodes[12]
    assert not node.alive
    tx_asleep = node.counters.transmit_counter
    net.run_until(1100.0)  # awake phase [900, 1200)
    assert node.alive
    net.run_until(2400.0)  # past end: awake for good
    assert node.alive
    # sleep keeps state: counters accumulate across naps instead of resetting
    assert node.counters.transmit_counter > tx_asleep
    assert node.counters.self_transmit_counter > 0


def test_firmware_skew_narrows_then_restores_reported_metrics():
    full_set = None
    net = fresh_network()
    subset = ("temperature", "voltage", "neighbor_num", "transmit_counter")
    FaultInjector([
        FirmwareSkew((12,), metrics=subset, start=600.0, end=1800.0),
    ]).install(net)
    net.run_until(550.0)
    full_set = net.collector.metrics_reported.get(12)
    assert full_set and len(full_set) > len(subset)
    net.run_until(1700.0)  # well inside the window: only the subset arrives
    assert net.collector.metrics_reported[12] == tuple(sorted(subset))
    net.run_until(2800.0)  # upgraded again
    assert net.collector.metrics_reported[12] == full_set


def test_firmware_skew_rejects_unknown_metric_names():
    net = fresh_network()
    with pytest.raises(ValueError, match="unknown metrics"):
        FaultInjector([
            FirmwareSkew((12,), metrics=("bogus_metric",), start=0.0, end=10.0),
        ]).install(net)


def test_gateway_failure_needs_a_sink_and_recovers():
    net = fresh_network(gateway_ids=(24,))
    assert net.nodes[24].is_sink
    assert net.sink_ids == [0, 24]
    FaultInjector([
        GatewayFailure(24, at=900.0, recover_at=1800.0),
    ]).install(net)
    net.run_until(1200.0)
    assert not net.nodes[24].alive
    net.run_until(2400.0)
    assert net.nodes[24].alive
    (event,) = net.ground_truth
    assert event.kind == "gateway_failover"
    assert event.node_ids[0] == 24 and len(event.node_ids) > 1
    assert net.collector.packets_received > 0  # traffic survived the outage

    plain = fresh_network()
    with pytest.raises(ValueError, match="not a sink"):
        FaultInjector([GatewayFailure(24, at=900.0)]).install(plain)


def test_node_move_relocates_and_rebuilds_links():
    net = fresh_network()
    assert net.medium.neighbors(12)
    FaultInjector([NodeMove(12, at=600.0, to=(500.0, 500.0))]).install(net)
    net.run_until(700.0)
    assert net.topology.positions[12] == (500.0, 500.0)
    assert net.medium.neighbors(12) == []  # out of everyone's range now
    assert [g.kind for g in net.ground_truth] == ["node_move"]


def test_correlated_interference_records_one_event_per_burst():
    net = fresh_network()
    fault = CorrelatedInterference(
        centers=((0.0, 0.0), (36.0, 36.0)),
        radius=10.0,
        bursts=((600.0, 900.0), (1500.0, 1800.0)),
    )
    FaultInjector([fault]).install(net)
    assert [g.kind for g in net.ground_truth] == [
        "correlated_interference", "correlated_interference",
    ]
    first, second = net.ground_truth
    assert first.node_ids == second.node_ids  # same disks, each burst
    # both corners affected, the far-away center column not
    assert 0 in first.node_ids and 24 in first.node_ids
    assert 2 not in first.node_ids


# ----------------------------------------------------------------------
# presets through the runner: determinism and bit-identity
# ----------------------------------------------------------------------


def test_presets_are_pure_functions_of_their_arguments():
    for name in PRESET_NAMES:
        a = build_preset(name, seed=13, scale="tiny")
        b = build_preset(name, seed=13, scale="tiny")
        assert a == b and a.to_dict() == b.to_dict(), name
        assert validate_scenario(a) == [], name


@pytest.fixture(scope="module")
def preset_reports(tmp_path_factory):
    """Every tiny preset, run serially and across a process pool."""
    jobs = chaos_preset_jobs(seed=2011, scale="tiny")
    base = tmp_path_factory.mktemp("chaos-diff")
    serial = run_jobs(jobs, n_workers=1, cache_dir=base / "serial")
    parallel = run_jobs(jobs, n_workers=N_TEST_JOBS, cache_dir=base / "parallel")
    assert serial.ok and parallel.ok
    return jobs, serial, parallel


def _frame_for(jobs, report, name):
    for job, result in zip(jobs, report.results):
        if job.scenario.name == name:
            return result.frame()
    raise KeyError(name)


def test_every_preset_parallel_bit_identical_to_serial(preset_reports):
    jobs, serial, parallel = preset_reports
    assert [j.scenario.name for j in jobs] == list(PRESET_NAMES)
    for job, s, p in zip(jobs, serial.frames(), parallel.frames()):
        assert_columns_equal(s, p, job.describe())
        assert len(s) > 0


def test_citysee_mix_is_exactly_the_plain_generator(preset_reports):
    jobs, serial, _parallel = preset_reports
    mix = _frame_for(jobs, serial, "citysee-mix")
    plain = generate_citysee_frame(CitySeeProfile.tiny(seed=2011), use_cache=False)
    assert_columns_equal(mix, plain, "citysee-mix vs generate_citysee_frame")


def test_chaos_frames_carry_their_scenario(preset_reports):
    jobs, serial, _parallel = preset_reports
    frame = _frame_for(jobs, serial, "gateway-blackout")
    assert frame.metadata["kind"] == "chaos"
    restored = ChaosScenario.from_dict(frame.metadata["scenario"])
    assert restored == jobs[-1].scenario
    assert any(g.kind == "gateway_failover" for g in frame.ground_truth)


# ----------------------------------------------------------------------
# scorecard
# ----------------------------------------------------------------------


def test_scorecard_detects_correlated_bursts(preset_reports):
    jobs, serial, _parallel = preset_reports
    frame = _frame_for(jobs, serial, "correlated-bursts")
    card = score_scenario_frame(frame, scenario_name="correlated-bursts")
    rf = card.family("rf")
    assert rf.episodes == 3
    assert rf.detected >= 2
    assert all(lat >= 0.0 for lat in rf.latencies_s)
    doc = card.to_json_dict()
    assert doc["scenario"] == "correlated-bursts"
    families = {row["family"] for row in doc["families"]}
    assert "rf" in families
    assert card.check_gates({"rf": 0.5}) == []


def test_scorecard_gate_failures_are_descriptive():
    card_score = FamilyScore("timing", episodes=5, detected=1)
    from repro.analysis.scorecard import ChaosScorecard

    card = ChaosScorecard(
        scenario_name="demo", per_family=[card_score], n_states=10,
        min_strength=0.2,
    )
    failures = card.check_gates({"timing": 0.5, "rf": 0.3})
    assert len(failures) == 2
    assert any("timing detection rate 0.20 below floor 0.50" in f
               for f in failures)
    assert any("no ground-truth episodes" in f for f in failures)
    assert card.check_gates({"timing": 0.1}) == []


def test_conflicting_lifecycle_faults_rejected_in_scenarios():
    """The injector's conflict check guards chaos schedules too."""
    from repro.simnet.faults import FaultConflictError

    net = fresh_network(gateway_ids=(24,))
    with pytest.raises(FaultConflictError):
        FaultInjector([
            NodeFailure(24, at=600.0),
            GatewayFailure(24, at=600.0),
        ]).install(net)
