"""Unit tests for the forwarding engine (dedup, loops, overflow, retx)."""

import pytest

from repro.metrics.packets import C1Packet
from repro.simnet.counters import CounterSet
from repro.simnet.ctp.forwarding import (
    INITIAL_THL,
    MAX_RETRANSMISSIONS,
    DataFrame,
    ForwardingEngine,
)


def make_engine(is_sink=False, capacity=4):
    counters = CounterSet()
    engine = ForwardingEngine(
        node_id=7, counters=counters, is_sink=is_sink, queue_capacity=capacity
    )
    return engine, counters


def make_frame(origin=1, seqno=0, path=(1,), thl=INITIAL_THL):
    report = C1Packet(node_id=origin, epoch=0, generated_at=0.0, values={})
    return DataFrame(
        origin=origin, seqno=seqno, report=report, path=tuple(path), thl=thl,
        created_at=0.0,
    )


def test_submit_self_report_counts_and_queues():
    engine, counters = make_engine()
    frame = engine.submit_self_report(
        C1Packet(node_id=7, epoch=0, generated_at=0.0, values={}), now=0.0
    )
    assert frame is not None
    assert frame.path == (7,)
    assert counters.self_transmit_counter == 1
    assert len(engine.queue) == 1


def test_self_report_overflow_counts():
    engine, counters = make_engine(capacity=1)
    for _ in range(2):
        engine.submit_self_report(
            C1Packet(node_id=7, epoch=0, generated_at=0.0, values={}), now=0.0
        )
    assert counters.overflow_drop_counter == 1
    assert counters.self_transmit_counter == 2


def test_fresh_frame_accepted_and_acked():
    engine, counters = make_engine()
    verdict = engine.on_frame_received(make_frame())
    assert verdict.accepted and verdict.send_ack
    assert counters.receive_counter == 1
    stored = engine.queue.peek()
    assert stored.path == (1, 7)
    assert stored.thl == INITIAL_THL - 1


def test_exact_duplicate_acked_not_requeued():
    engine, counters = make_engine()
    engine.on_frame_received(make_frame())
    verdict = engine.on_frame_received(make_frame())
    assert verdict.was_duplicate and verdict.send_ack and not verdict.accepted
    assert counters.duplicate_counter == 1
    assert len(engine.queue) == 1


def test_looped_frame_detected_and_still_forwarded():
    engine, counters = make_engine()
    engine.on_frame_received(make_frame(seqno=5, path=(1,), thl=10))
    # the same packet comes back after visiting 7 (this node) and 3
    verdict = engine.on_frame_received(make_frame(seqno=5, path=(1, 7, 3), thl=8))
    assert verdict.loop_detected
    assert counters.loop_counter == 1
    assert counters.duplicate_counter == 1  # looped copy counts as duplicate
    assert verdict.accepted  # still enqueued, THL will kill it eventually
    assert len(engine.queue) == 2


def test_overflow_drops_without_ack():
    engine, counters = make_engine(capacity=1)
    engine.on_frame_received(make_frame(seqno=0))
    verdict = engine.on_frame_received(make_frame(seqno=1))
    assert not verdict.send_ack and not verdict.accepted
    assert counters.overflow_drop_counter == 1


def test_thl_expired_acked_but_discarded():
    engine, counters = make_engine()
    verdict = engine.on_frame_received(make_frame(thl=0))
    assert verdict.send_ack and not verdict.accepted
    assert len(engine.queue) == 0


def test_sink_delivers_once():
    engine, counters = make_engine(is_sink=True)
    v1 = engine.on_frame_received(make_frame(seqno=3, thl=10))
    assert v1.delivered_at_sink
    # looped/different-THL copy of the same packet is not delivered again
    v2 = engine.on_frame_received(make_frame(seqno=3, thl=8, path=(1, 2)))
    assert not v2.delivered_at_sink
    assert counters.duplicate_counter == 1
    assert counters.receive_counter == 1


def test_retry_head_drops_after_limit():
    engine, counters = make_engine()
    engine.submit_self_report(
        C1Packet(node_id=7, epoch=0, generated_at=0.0, values={}), now=0.0
    )
    for _ in range(MAX_RETRANSMISSIONS):
        assert engine.retry_head()
    assert not engine.retry_head()  # the 31st failure drops the packet
    assert counters.drop_packet_counter == 1
    assert len(engine.queue) == 0


def test_complete_head_resets_retx():
    engine, _ = make_engine()
    engine.submit_self_report(
        C1Packet(node_id=7, epoch=0, generated_at=0.0, values={}), now=0.0
    )
    engine.retry_head()
    engine.complete_head()
    assert engine.head_retx == 0


def test_dedup_cache_evicts_oldest():
    engine, counters = make_engine(capacity=600)
    from repro.simnet.ctp import forwarding

    for seqno in range(forwarding.DEDUP_CACHE_SIZE + 10):
        engine.on_frame_received(make_frame(seqno=seqno))
    # seqno 0 has been evicted: replaying it is NOT flagged duplicate
    engine.on_frame_received(make_frame(seqno=0))
    assert counters.duplicate_counter == 0


def test_clear_keeps_seqno_monotonic():
    engine, _ = make_engine()
    f1 = engine.submit_self_report(
        C1Packet(node_id=7, epoch=0, generated_at=0.0, values={}), now=0.0
    )
    engine.clear()
    f2 = engine.submit_self_report(
        C1Packet(node_id=7, epoch=1, generated_at=0.0, values={}), now=0.0
    )
    assert f2.seqno > f1.seqno
