"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["simulate-testbed", "--seed", "3"])
    assert args.seed == 3


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    import repro

    with pytest.raises(SystemExit) as exc:
        build_parser().parse_args(["--version"])
    assert exc.value.code == 0
    assert capsys.readouterr().out.strip() == f"vn2 {repro.__version__}"
    # Single-sourced: the CLI reports exactly the package's version.
    assert repro.__version__.count(".") == 2


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve", "model"])
    assert args.model == "model"
    assert (args.host, args.port, args.http_port) == ("127.0.0.1", 7433, 7434)
    assert args.queue_size == 8192
    assert args.retry_after == pytest.approx(0.05)
    assert args.max_closed == 10000
    assert args.ready_file is None


def test_serve_parser_accepts_tuned_knobs():
    args = build_parser().parse_args([
        "serve", "model", "--port", "0", "--http-port", "0",
        "--queue-size", "128", "--retry-after", "0.01",
        "--time-gap", "300", "--radius", "45", "--max-closed", "-1",
        "--ready-file", "ports.json",
    ])
    assert args.queue_size == 128
    assert args.max_closed == -1  # mapped to unlimited by _cmd_serve
    assert args.ready_file == "ports.json"


def test_simulate_train_diagnose_flow(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    rc = main([
        "simulate-testbed", "--seed", "3", "--duration", "2400",
        "--output", str(trace_path),
    ])
    assert rc == 0
    assert trace_path.exists()

    model_path = tmp_path / "model"
    rc = main([
        "train", str(trace_path), "--rank", "6", "--no-filter",
        "--output", str(model_path),
    ])
    assert rc == 0
    assert model_path.with_suffix(".npz").exists()
    assert model_path.with_suffix(".json").exists()
    sidecar = json.loads(model_path.with_suffix(".json").read_text())
    assert sidecar["rank"] == 6

    rc = main([
        "diagnose", str(model_path), str(trace_path), "--limit", "5",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "diagnoses shown" in out


def test_incidents_command(tmp_path, capsys):
    from repro.analysis.baseline_comparison import build_multicause_trace
    from repro.traces.io import save_trace_jsonl

    trace_path = tmp_path / "mc.jsonl"
    save_trace_jsonl(build_multicause_trace(seed=21), trace_path)
    rc = main(["incidents", str(trace_path), "--rank", "10", "--limit", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "nodes" in out or "no incidents" in out


def test_evaluate_command(tmp_path, capsys):
    from repro.analysis.baseline_comparison import build_multicause_trace
    from repro.traces.io import save_trace_jsonl

    trace_path = tmp_path / "mc.jsonl"
    save_trace_jsonl(build_multicause_trace(seed=21), trace_path)
    rc = main(["evaluate", str(trace_path), "--rank", "10"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "micro:" in out


def test_evaluate_rejects_gt_free_trace(tmp_path, capsys):
    from repro.simnet.network import Network, NetworkConfig
    from repro.simnet.topology import grid_topology
    from repro.traces.io import save_trace_jsonl
    from repro.traces.records import trace_from_network

    net = Network(grid_topology(rows=3, cols=3, spacing=9.0),
                  NetworkConfig(report_period_s=60.0, seed=1,
                                max_range_m=40.0))
    net.run(600.0)
    trace_path = tmp_path / "clean.jsonl"
    save_trace_jsonl(trace_from_network(net), trace_path)
    rc = main(["evaluate", str(trace_path)])
    assert rc == 1


def test_experiment_table1_quick(capsys):
    rc = main(["experiment", "table1", "--quick"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "routing_loop" in out


def test_experiment_unknown_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "not-a-thing"])


def test_experiment_fig3a_tiny(capsys):
    rc = main(["experiment", "fig3a", "--profile", "tiny"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "exceptions" in out


def test_experiment_ablation_sparsify_tiny(capsys):
    rc = main(["experiment", "ablation-sparsify", "--profile", "tiny"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "retention" in out


def test_experiment_baselines(capsys):
    rc = main(["experiment", "baselines"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Sympathy" in out
