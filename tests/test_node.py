"""Unit-ish tests for the Node class (snapshots, lifecycle, timers)."""

import numpy as np
import pytest

from repro.metrics.catalog import METRIC_INDEX, NUM_METRICS
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.node import EMPTY_ETX_SLOT, EMPTY_RSSI_SLOT
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology


@pytest.fixture
def network():
    topo = grid_topology(rows=3, cols=3, spacing=9.0)
    net = Network(topo, NetworkConfig(
        report_period_s=60.0, beacon_min_s=5.0, beacon_max_s=60.0,
        seed=2, radio=RadioParams(tx_power_dbm=-10.0), max_range_m=40.0,
    ))
    net.run(600.0)
    return net


def test_snapshot_has_full_shape(network):
    vec = network.nodes[4].build_snapshot(network.sim.now())
    assert vec.shape == (NUM_METRICS,)
    assert np.all(np.isfinite(vec))


def test_empty_neighbor_slots_use_sentinels(network):
    node = network.nodes[8]
    vec = node.build_snapshot(network.sim.now())
    n = int(vec[METRIC_INDEX["neighbor_num"]])
    if n < 10:
        assert vec[METRIC_INDEX[f"rssi_{n + 1}"]] == EMPTY_RSSI_SLOT
        assert vec[METRIC_INDEX[f"etx_{n + 1}"]] == EMPTY_ETX_SLOT


def test_neighbor_slots_sorted_best_first(network):
    node = network.nodes[4]
    vec = node.build_snapshot(network.sim.now())
    n = int(vec[METRIC_INDEX["neighbor_num"]])
    etxs = [vec[METRIC_INDEX[f"etx_{i}"]] for i in range(1, min(n, 10) + 1)]
    assert etxs == sorted(etxs)


def test_sink_does_not_report(network):
    assert network.sink.epoch == 0
    assert network.sink.counters.self_transmit_counter == 0


def test_sink_beacons(network):
    assert network.sink.counters.beacon_counter > 0


def test_dead_node_ignores_beacons(network):
    node = network.nodes[8]
    node.die()
    entries_before = len(node.estimator.entries)
    network.run(120.0)
    assert len(node.estimator.entries) == entries_before


def test_die_is_quiet(network):
    node = network.nodes[8]
    node.die()
    tx = node.counters.transmit_counter
    network.run(300.0)
    assert node.counters.transmit_counter == tx


def test_reboot_restarts_reporting(network):
    node = network.nodes[8]
    node.die()
    network.run(120.0)
    node.reboot()
    network.run(300.0)
    assert node.counters.self_transmit_counter > 0
    assert node.alive


def test_epoch_monotonic_across_reboot(network):
    node = network.nodes[8]
    epoch_before = node.epoch
    node.reboot()
    network.run(300.0)
    assert node.epoch > epoch_before  # continues counting, never resets


def test_repr_smoke(network):
    assert "node" in repr(network.nodes[1])
    assert "sink" in repr(network.sink)
