"""Regenerate tests/data/golden_trace.jsonl (run from the repo root).

Only do this deliberately, after a simulator change you intend to keep:
the golden tests exist to make such changes visible.  Update the expected
constants in tests/test_golden_trace.py to match the printed summary.
"""

from repro.simnet.faults import FaultInjector, ForcedLoop, NodeReboot
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology
from repro.traces.io import save_trace_jsonl
from repro.traces.records import trace_from_network


def main() -> None:
    topology = grid_topology(rows=4, cols=4, spacing=9.0)
    network = Network(topology, NetworkConfig(
        report_period_s=120.0, beacon_min_s=10.0, beacon_max_s=120.0,
        seed=12345, radio=RadioParams(tx_power_dbm=-10.0), max_range_m=40.0,
    ))
    FaultInjector([
        ForcedLoop(10, 11, start=600.0, end=900.0),
        NodeReboot(5, at=1000.0),
    ]).install(network)
    network.run(1800.0)
    trace = trace_from_network(network, metadata={
        "kind": "golden",
        "positions": {
            str(n): list(p) for n, p in topology.positions.items()
        },
    })
    save_trace_jsonl(trace, "tests/data/golden_trace.jsonl")
    print(f"golden trace: {len(trace)} snapshots, "
          f"delivery {trace.delivery_ratio():.4f}")


if __name__ == "__main__":
    main()
