"""Unit tests for named RNG streams."""

from repro.simnet.rng import RngRegistry


def test_same_name_returns_same_generator():
    rngs = RngRegistry(seed=1)
    assert rngs.stream("radio") is rngs.stream("radio")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(seed=42).stream("mac").random(5)
    b = RngRegistry(seed=42).stream("mac").random(5)
    assert (a == b).all()


def test_different_names_give_different_draws():
    rngs = RngRegistry(seed=42)
    a = rngs.stream("alpha").random(5)
    b = rngs.stream("beta").random(5)
    assert not (a == b).all()


def test_different_seeds_give_different_draws():
    a = RngRegistry(seed=1).stream("x").random(5)
    b = RngRegistry(seed=2).stream("x").random(5)
    assert not (a == b).all()


def test_stream_identity_independent_of_creation_order():
    forward = RngRegistry(seed=9)
    forward.stream("first")
    fa = forward.stream("second").random(3)

    backward = RngRegistry(seed=9)
    ba = backward.stream("second").random(3)
    assert (fa == ba).all()


def test_reset_replays_stream():
    rngs = RngRegistry(seed=3)
    first = rngs.stream("s").random(4)
    rngs.reset("s")
    replay = rngs.stream("s").random(4)
    assert (first == replay).all()
