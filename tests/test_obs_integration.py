"""Telemetry threaded through the real subsystems.

End-to-end checks of the observability PR's acceptance criteria: a fit
under an enabled tracer produces a span per pipeline stage while the
``timings_`` dict keeps its seed-era keys; the streaming session and
incident tracker report into an injected registry (with labels, and a
weakref-bound open-incident gauge); and the CLI faces — ``vn2 profile``
and ``vn2 watch --stats-every`` — work against real traces on disk.
"""

from __future__ import annotations

import gc
import json
import math

import pytest

from repro.cli import main
from repro.core.incidents import IncidentTracker, Observation
from repro.core.pipeline import VN2, VN2Config
from repro.core.streaming import StreamingDiagnosisSession, iter_packets
from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_tracer,
    set_registry,
    set_tracer,
    validate_exposition,
)
from repro.traces.frame import as_frame
from repro.traces.io import save_frame


@pytest.fixture()
def traced():
    """An enabled tracer and a fresh default registry, installed globally."""
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry(enabled=True)
    prev_tracer = set_tracer(tracer)
    prev_registry = set_registry(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(prev_tracer)
        set_registry(prev_registry)


# ---------------------------------------------------------------------------
# VN2.fit under the tracer
# ---------------------------------------------------------------------------

FIT_STAGES = [
    "fit.states", "fit.exceptions", "fit.normalize", "fit.rank_sweep",
    "fit.nmf", "fit.sparsify", "fit.interpret",
]


def test_fit_spans_cover_every_stage(tiny_citysee_trace, traced):
    tracer, registry = traced
    tool = VN2(VN2Config(rank=None, rank_candidates=(4, 8))).fit(
        tiny_citysee_trace
    )

    (root,) = tracer.roots
    assert root.name == "fit"
    child_names = [c.name for c in root.children]
    assert child_names == FIT_STAGES  # every stage, in pipeline order
    by_name = {c.name: c for c in root.children}

    # timings_ keeps its seed-era keys, derived from the same spans
    assert set(tool.timings_) == {"states", "exceptions", "nmf", "sparsify"}
    assert tool.timings_["states"] == by_name["fit.states"].wall_s
    assert tool.timings_["exceptions"] == by_name["fit.exceptions"].wall_s
    assert tool.timings_["sparsify"] == by_name["fit.sparsify"].wall_s
    # the nmf key covers rank sweep + final factorization, as the old
    # stopwatch did
    assert tool.timings_["nmf"] == pytest.approx(
        by_name["fit.rank_sweep"].wall_s + by_name["fit.nmf"].wall_s
    )

    # stage attrs carry the run's shape
    assert by_name["fit.rank_sweep"].attrs["candidates"] == [4, 8]
    assert by_name["fit.nmf"].attrs["rank"] == tool.rank_

    # fit counters landed in the installed registry
    fits = registry.counter("repro_core_fits_total")
    states = registry.counter("repro_core_fit_states_total")
    assert fits.value == 1
    assert states.value == len(tool.states_)


def test_fixed_rank_fit_skips_the_sweep_span(tiny_citysee_trace, traced):
    tracer, _registry = traced
    VN2(VN2Config(rank=6)).fit(tiny_citysee_trace)
    (root,) = tracer.roots
    names = [c.name for c in root.children]
    assert "fit.rank_sweep" not in names
    assert "fit.nmf" in names


def test_diagnose_batch_records_nnls(tiny_citysee_tool, tiny_citysee_trace,
                                     traced):
    # the session-scoped tool fixture is listed first so its (possibly
    # traced) construction happens before the tracer swap, not inside it
    tracer, registry = traced
    from repro.core.states import build_states

    states = build_states(tiny_citysee_trace)
    reports = tiny_citysee_tool.diagnose_batch(states.values[:32])
    assert len(reports) == 32
    assert [r.name for r in tracer.roots] == ["diagnose.nnls"]
    assert tracer.roots[0].attrs == {"n_states": 32}
    assert tiny_citysee_tool.timings_["nnls"] == tracer.roots[0].wall_s
    assert registry.counter("repro_core_nnls_batches_total").value == 1
    assert registry.counter("repro_core_nnls_states_total").value == 32
    assert registry.histogram("repro_core_nnls_batch_seconds").count == 1


# ---------------------------------------------------------------------------
# Streaming session + incident tracker against an injected registry
# ---------------------------------------------------------------------------


def test_session_reports_into_injected_registry(testbed_tool, testbed_trace):
    frame = as_frame(testbed_trace)
    registry = MetricsRegistry(enabled=True)
    labels = {"deployment": "lab"}
    session = StreamingDiagnosisSession(
        testbed_tool, registry=registry, metric_labels=labels
    )
    for i, packet in enumerate(iter_packets(frame)):
        session.push_packet(*packet)
        if i >= 999:
            break

    counts = session.counters()
    assert counts["packets"] == 1000

    def metric(name):
        return registry.counter(name, labels=labels).value

    assert metric("repro_streaming_packets_total") == counts["packets"]
    assert metric("repro_streaming_states_total") == counts["states"]
    assert metric("repro_streaming_exceptions_total") == counts["exceptions"]
    assert metric("repro_incidents_opened_total") >= counts["incidents_open"]
    latency = registry.histogram(
        "repro_streaming_packet_seconds", labels=labels
    )
    assert latency.count == counts["packets"]
    assert latency.quantile(0.5) is not None

    # the open-incident gauge reads through to the tracker, live
    gauge = registry.gauge("repro_incidents_open", labels=labels)
    assert gauge.value == float(session.tracker.n_open)
    events = session.finish()
    assert metric("repro_streaming_incident_events_total") >= len(events)
    assert gauge.value == 0.0  # finish closed everything

    # the whole registry renders as valid Prometheus exposition
    text = registry.to_prometheus()
    assert validate_exposition(text) > 0
    assert 'repro_streaming_packets_total{deployment="lab"} 1000' in text

    # weakref binding: a collected tracker must not wedge the scrape
    del session
    gc.collect()
    assert gauge.value == 0.0 or math.isnan(gauge.value)
    validate_exposition(registry.to_prometheus())


def test_disabled_registry_session_still_counts(testbed_tool, testbed_trace):
    from repro.obs import NULL_REGISTRY

    frame = as_frame(testbed_trace)
    session = StreamingDiagnosisSession(testbed_tool, registry=NULL_REGISTRY)
    for i, packet in enumerate(iter_packets(frame)):
        session.push_packet(*packet)
        if i >= 99:
            break
    # the session's own counters dict is registry-independent
    assert session.counters()["packets"] == 100
    assert NULL_REGISTRY.collect() == {}


def _obs(node=1, start=0.0, end=600.0):
    return Observation(
        node_id=node, time_from=start, time_to=end,
        cause_index=0, hazard="congestion", strength=0.5,
    )


def test_tracker_eviction_counters_reach_registry():
    registry = MetricsRegistry(enabled=True)
    tracker = IncidentTracker(
        time_gap_s=600.0, max_closed=2, registry=registry,
        metric_labels={"deployment": "lab"},
    )
    for i in range(6):  # far-apart singles: each add closes the previous
        start = i * 10_000.0
        tracker.add(_obs(start=start, end=start + 600.0))
    tracker.flush()

    def metric(name):
        return registry.counter(name, labels={"deployment": "lab"}).value

    assert metric("repro_incidents_opened_total") == 6
    assert metric("repro_incidents_closed_total") == tracker.n_closed_total == 6
    assert metric("repro_incidents_evicted_total") == tracker.n_evicted == 4
    assert len(tracker.incidents) == 2
    gauge = registry.gauge("repro_incidents_open", labels={"deployment": "lab"})
    assert gauge.value == float(tracker.n_open) == 0.0


# ---------------------------------------------------------------------------
# CLI: vn2 profile / vn2 watch --stats-every
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def deployed(testbed_tool, testbed_trace, tmp_path_factory):
    """A saved model and JSONL trace, as the watch/profile CLIs want them."""
    root = tmp_path_factory.mktemp("obs-cli")
    model = root / "model"
    testbed_tool.save(model)
    trace = root / "trace.jsonl"
    save_frame(as_frame(testbed_trace), trace, fmt="jsonl")
    return model, trace


def test_profile_train_prints_tree_and_exports_spans(deployed, tmp_path,
                                                     capsys):
    _model, trace = deployed
    spans_path = tmp_path / "spans.jsonl"
    out_model = tmp_path / "model"
    rc = main([
        "profile", "--top", "5", "--output", str(spans_path),
        "train", str(trace), "--rank", "6", "--no-filter",
        "--output", str(out_model),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "profile: vn2 train" in out
    for stage in ("fit", "fit.states", "fit.nmf", "fit.sparsify"):
        assert stage in out
    assert f"spans -> {spans_path}" in out
    # the profiling tracer was uninstalled afterwards
    assert get_tracer().enabled is False

    records = [
        json.loads(line) for line in spans_path.read_text().splitlines()
    ]
    names = {r["name"] for r in records}
    assert {"vn2 train", "fit", "fit.nmf", "fit.interpret"} <= names
    roots = [r for r in records if r["parent_id"] is None]
    assert [r["name"] for r in roots] == ["vn2 train"]
    assert all(r["status"] == "ok" for r in records)


def test_profile_without_command_fails_cleanly(capsys):
    assert main(["profile"]) == 2
    assert "give a subcommand" in capsys.readouterr().err
    assert main(["profile", "profile", "train"]) == 2
    assert "cannot profile itself" in capsys.readouterr().err
    assert get_tracer().enabled is False


def test_watch_stats_every_goes_to_stderr_only(deployed, tmp_path, capsys):
    model, trace = deployed
    log = tmp_path / "events.jsonl"
    rc = main([
        "watch", str(trace), "--model", str(model), "--no-follow",
        "--stats-every", "0", "--output", str(log),
    ])
    assert rc == 0
    captured = capsys.readouterr()
    stats_lines = [
        line for line in captured.err.splitlines()
        if line.startswith("[stats]")
    ]
    assert stats_lines, "no [stats] snapshots on stderr"
    assert "packets=" in stats_lines[-1]
    assert "incidents open=" in stats_lines[-1]
    # stdout keeps the event-line format, untouched by the stats feed
    assert "[stats]" not in captured.out
    assert "watched" in captured.out and "incidents" in captured.out
    # the JSONL event log keeps its exact schema
    event_keys = {
        "kind", "incident_id", "time", "hazard", "node_ids", "start", "end",
        "peak_strength", "total_strength", "n_observations",
    }
    events = [
        json.loads(line) for line in log.read_text().splitlines() if line
    ]
    assert events
    assert all(set(e) == event_keys for e in events)
