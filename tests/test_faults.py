"""Integration tests for fault injection: each hazard leaves its signature."""

import numpy as np
import pytest

from repro.metrics.catalog import METRIC_INDEX
from repro.simnet.faults import (
    BatteryDrain,
    FaultInjector,
    ForcedLoop,
    Interference,
    LinkDegradation,
    NodeFailure,
    NodeReboot,
    TrafficBurst,
)
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology


def fresh_network(seed=3):
    topo = grid_topology(rows=5, cols=5, spacing=9.0)
    return Network(topo, NetworkConfig(
        report_period_s=120.0, beacon_min_s=10.0, beacon_max_s=120.0,
        seed=seed, radio=RadioParams(tx_power_dbm=-10.0), max_range_m=40.0,
    ))


def test_node_failure_silences_node():
    net = fresh_network()
    FaultInjector([NodeFailure(12, at=600.0)]).install(net)
    net.run(600.0)
    tx_at_death = net.nodes[12].counters.transmit_counter
    net.run(900.0)
    assert not net.nodes[12].alive
    assert net.nodes[12].counters.transmit_counter == tx_at_death


def test_reboot_resets_counters_and_revives():
    net = fresh_network()
    FaultInjector([
        NodeFailure(12, at=600.0),
        NodeReboot(12, at=900.0),
    ]).install(net)
    net.run(1800.0)
    node = net.nodes[12]
    assert node.alive
    # counters restarted at the reboot and accumulated for ~900 s only
    # (node 12 is a central relay, so it also forwards others' packets)
    assert 0 < node.counters.transmit_counter < 300
    assert node.counters.self_transmit_counter <= 3 * 9  # ~= 900s/120s epochs


def test_reboot_of_live_node_does_not_double_timers():
    net = fresh_network()
    FaultInjector([NodeReboot(12, at=600.0)]).install(net)
    net.run(1800.0)
    node = net.nodes[12]
    # 20 min after the reboot at 120 s period: ~10 reports (30 packets) if a
    # single timer chain survives, ~60 packets if the reboot accidentally
    # armed a second chain.
    assert node.counters.self_transmit_counter <= 12 * 3


def test_forced_loop_inflates_loop_metrics():
    net = fresh_network()
    FaultInjector([ForcedLoop(12, 17, start=600.0, end=1200.0)]).install(net)
    net.run(1800.0)
    total_loops = net.nodes[12].counters.loop_counter + net.nodes[17].counters.loop_counter
    total_dups = (
        net.nodes[12].counters.duplicate_counter
        + net.nodes[17].counters.duplicate_counter
    )
    assert total_loops > 10
    assert total_dups > 10


def test_interference_raises_backoffs():
    quiet = fresh_network()
    quiet.run(1500.0)
    jammed = fresh_network()
    FaultInjector([
        Interference(center=(18.0, 18.0), radius=30.0, start=600.0,
                     end=1500.0, delta_db=18.0)
    ]).install(jammed)
    jammed.run(1500.0)
    quiet_backoffs = sum(n.counters.mac_backoff_counter for n in quiet.nodes.values())
    jammed_backoffs = sum(n.counters.mac_backoff_counter for n in jammed.nodes.values())
    assert jammed_backoffs > 2 * quiet_backoffs


def test_link_degradation_causes_retransmits():
    clean = fresh_network()
    clean.run(1500.0)
    shadowed = fresh_network()
    FaultInjector([
        LinkDegradation(center=(18.0, 18.0), radius=30.0, start=600.0,
                        end=1500.0, extra_db=15.0)
    ]).install(shadowed)
    shadowed.run(1500.0)
    clean_noack = sum(
        n.counters.noack_retransmit_counter for n in clean.nodes.values()
    )
    shadowed_noack = sum(
        n.counters.noack_retransmit_counter for n in shadowed.nodes.values()
    )
    assert shadowed_noack > 2 * clean_noack


def test_traffic_burst_overflows_queues():
    net = fresh_network()
    FaultInjector([
        TrafficBurst(node_ids=(21, 22, 23), start=600.0, end=1200.0,
                     interval_s=0.5)
    ]).install(net)
    net.run(1500.0)
    total_overflow = sum(
        n.counters.overflow_drop_counter for n in net.nodes.values()
    )
    assert total_overflow > 50


def test_battery_drain_sags_voltage():
    net = fresh_network()
    FaultInjector([
        BatteryDrain(12, start=300.0, end=1800.0, multiplier=5000.0)
    ]).install(net)
    net.run(1800.0)
    drained = net.nodes[12].hardware.battery.depletion()
    healthy = net.nodes[13].hardware.battery.depletion()
    assert drained > 10 * max(healthy, 1e-9)


def test_ground_truth_recorded():
    net = fresh_network()
    injector = FaultInjector([
        NodeFailure(12, at=600.0),
        ForcedLoop(7, 8, start=100.0, end=200.0),
    ])
    injector.install(net)
    kinds = {g.kind for g in net.ground_truth}
    assert kinds == {"node_failure", "routing_loop"}


def test_injector_add_chaining():
    injector = FaultInjector().add(NodeFailure(1, at=1.0)).add(NodeReboot(1, at=2.0))
    assert len(injector.faults) == 2


def test_same_node_same_tick_lifecycle_conflict_rejected():
    """Regression: a failure and a reboot of one node at the identical tick
    used to resolve silently to whichever was installed last (event-queue
    insertion order); the injector now refuses the schedule up front."""
    from repro.simnet.faults import FaultConflictError

    net = fresh_network()
    injector = FaultInjector([
        NodeFailure(12, at=600.0),
        NodeReboot(12, at=600.0),
    ])
    with pytest.raises(FaultConflictError, match="node 12 at t=600"):
        injector.install(net)
    # nothing was scheduled: the network still runs fault-free
    net.run(900.0)
    assert net.nodes[12].alive


def test_distinct_ticks_and_distinct_nodes_do_not_conflict():
    FaultInjector([
        NodeFailure(12, at=600.0),
        NodeReboot(12, at=900.0),   # same node, later tick: fine
        NodeFailure(13, at=600.0),  # same tick, other node: fine
    ]).check_conflicts()
