"""Tests for per-node health reports."""

import pytest

from repro.analysis.node_report import node_health_report
from repro.core.pipeline import VN2, VN2Config


@pytest.fixture(scope="module")
def report(multicause_trace):
    tool = VN2(VN2Config(rank=12)).fit(multicause_trace)
    return node_health_report(tool, multicause_trace)


def test_covers_all_reporting_nodes(report, multicause_trace):
    assert len(report.nodes) == len(multicause_trace.node_ids)


def test_continuity_bounded(report):
    for health in report.nodes:
        assert 0.0 <= health.continuity <= 1.0
        assert 0.0 <= health.exception_fraction <= 1.0


def test_loop_nodes_are_unhealthy(report):
    """Nodes 21/22 run the forced loop: low continuity or exceptions."""
    troubled = {h.node_id: h for h in report.nodes}
    for node_id in (21, 22):
        health = troubled[node_id]
        assert not health.healthy, (
            node_id, health.continuity, health.exception_fraction,
            health.silent_windows,
        )


def test_worst_sorts_by_continuity(report):
    worst = report.worst(5)
    continuities = [h.continuity for h in worst]
    assert continuities == sorted(continuities)


def test_loop_nodes_have_silent_windows_or_causes(report):
    """During loop pulses the loop nodes either stop reporting (silent
    windows) or their states carry attributed causes."""
    by_id = {h.node_id: h for h in report.nodes}
    for node_id in (21, 22):
        health = by_id[node_id]
        assert health.silent_windows or health.top_causes


def test_to_text_renders(report):
    text = report.to_text()
    assert "continuity" in text
    assert "node" in text


def test_healthy_majority(report):
    healthy = sum(1 for h in report.nodes if h.healthy)
    assert healthy >= len(report.nodes) * 0.5
