"""Paper-scale smoke test: the full 286-node CitySee profile runs.

The benchmarks use scaled profiles for speed; this test demonstrates the
full profile is genuinely runnable through the same code path — one
simulated hour of the 286-node deployment with the paper's 10-minute
reporting period.
"""

import numpy as np
import pytest

from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.rng import RngRegistry
from repro.simnet.topology import random_geometric_topology
from repro.traces.citysee import CitySeeProfile


@pytest.fixture(scope="module")
def fullscale_network():
    profile = CitySeeProfile.full()
    rngs = RngRegistry(profile.seed)
    topology = random_geometric_topology(
        n_nodes=profile.n_nodes,
        area=profile.area,
        comm_radius=profile.comm_radius_m,
        rng=rngs.stream("topology"),
    )
    network = Network(topology, NetworkConfig(
        report_period_s=profile.report_period_s,
        day_seconds=profile.day_seconds,
        seed=profile.seed,
        max_range_m=profile.comm_radius_m * 1.25,
        radio=RadioParams(path_loss_exponent=profile.path_loss_exponent),
    ))
    network.run(3600.0)  # one simulated hour
    return network


def test_fullscale_topology_is_paper_sized(fullscale_network):
    assert len(fullscale_network.topology) == 286


def test_fullscale_tree_forms(fullscale_network):
    with_parent = sum(
        1
        for node in fullscale_network.nodes.values()
        if not node.is_sink and node.routing.parent is not None
    )
    assert with_parent > 230  # most of 285 sensors routed within an hour


def test_fullscale_collection_works(fullscale_network):
    # 285 sensors x 6 epochs x 3 packets = 5130 expected at most
    assert fullscale_network.stats.packets_generated > 3000
    assert fullscale_network.delivery_ratio() > 0.5
    assert fullscale_network.collector.total_snapshots() > 800


def test_fullscale_deep_paths_exist(fullscale_network):
    lengths = [
        node.routing.path_length()
        for node in fullscale_network.nodes.values()
        if not node.is_sink and node.routing.parent is not None
    ]
    assert max(lengths) >= 4  # genuinely multihop at CitySee scale
