"""Tests for the VN2 facade: fit, diagnose, persistence."""

import numpy as np
import pytest

from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states
from repro.metrics.catalog import METRIC_INDEX, NUM_METRICS


def test_fit_populates_model(testbed_tool):
    tool = testbed_tool
    assert tool.rank_ == 10
    assert tool.psi.shape == (10, NUM_METRICS)
    assert len(tool.labels) == 10
    assert tool.nmf_.loss > 0
    assert tool.sparsify_.retained_mass >= 0.9


def test_psi_nonnegative(testbed_tool):
    assert np.all(testbed_tool.psi >= 0)


def test_psi_display_bounded(testbed_tool):
    display = testbed_tool.psi_display()
    assert display.shape == testbed_tool.psi.shape
    assert np.all(np.abs(display) <= 1.0 + 1e-9)


def test_unfitted_raises():
    tool = VN2()
    with pytest.raises(RuntimeError):
        _ = tool.psi
    with pytest.raises(RuntimeError):
        tool.diagnose(np.zeros(NUM_METRICS))


def test_fit_requires_states():
    from repro.core.states import StateMatrix

    tool = VN2()
    with pytest.raises(ValueError):
        tool.fit_states(StateMatrix(np.zeros((0, NUM_METRICS)), []))


def test_diagnose_shape_validation(testbed_tool):
    with pytest.raises(ValueError):
        testbed_tool.diagnose(np.zeros(7))


def test_diagnose_returns_ranked_causes(testbed_tool, testbed_trace):
    states = build_states(testbed_trace)
    report = testbed_tool.diagnose(states.values[100])
    assert report.weights.shape == (10,)
    assert np.all(report.weights >= 0)
    assert report.residual >= 0
    for a, b in zip(report.ranked, report.ranked[1:]):
        assert a.strength >= b.strength
    assert isinstance(report.summary(), str)


def test_reboot_state_diagnosed_as_reboot(testbed_tool, testbed_trace):
    """A state whose counters jump backwards should decode to a reboot."""
    states = build_states(testbed_trace)
    tx = METRIC_INDEX["transmit_counter"]
    reboot_like = [
        i for i in range(len(states)) if states.values[i][tx] < -50
    ]
    assert reboot_like, "trace should contain reboot states"
    hits = 0
    for i in reboot_like[:20]:
        report = testbed_tool.diagnose(states.values[i])
        hazards = [
            c.label.primary_hazard for c in report.ranked[:3] if c.label
        ]
        if "node_reboot" in hazards:
            hits += 1
    assert hits >= len(reboot_like[:20]) * 0.5


def test_correlation_strengths_batch(testbed_tool, testbed_trace):
    states = build_states(testbed_trace)
    weights = testbed_tool.correlation_strengths(states.select(range(50)))
    assert weights.shape == (50, 10)
    assert np.all(weights >= 0)


def test_auto_rank_selection(tiny_citysee_trace):
    tool = VN2(VN2Config(rank=None, rank_candidates=(4, 8, 12))).fit(
        tiny_citysee_trace
    )
    assert tool.rank_ in (4, 8, 12)
    assert tool.rank_sweep_ is not None


def test_exception_filter_reduces_training_set(tiny_citysee_trace):
    filtered = VN2(VN2Config(rank=6, filter_exceptions=True)).fit(
        tiny_citysee_trace
    )
    unfiltered = VN2(VN2Config(rank=6, filter_exceptions=False)).fit(
        tiny_citysee_trace
    )
    assert filtered.exceptions_ is not None
    assert len(filtered.exceptions_.states) < len(unfiltered.states_)


def test_save_load_roundtrip(tmp_path, testbed_tool, testbed_trace):
    path = tmp_path / "model"
    testbed_tool.save(path)
    loaded = VN2.load(path)
    assert loaded.rank_ == testbed_tool.rank_
    assert np.allclose(loaded.psi, testbed_tool.psi)
    states = build_states(testbed_trace)
    original = testbed_tool.diagnose(states.values[42])
    restored = loaded.diagnose(states.values[42])
    assert np.allclose(original.weights, restored.weights)
    assert [c.index for c in original.ranked] == [c.index for c in restored.ranked]


def test_explain(testbed_tool):
    label = testbed_tool.explain(0)
    assert label.index == 0
    assert label.explanation
