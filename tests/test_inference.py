"""Tests for NNLS inference (Problem 3), with hypothesis optimality checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.inference import (
    active_causes,
    infer_single,
    infer_weights,
    sparsify_inferred,
)


def psi_matrices():
    # values are either exactly zero or of sane magnitude: NNLS on
    # subnormal-valued matrices (1e-313) is numerically meaningless
    elements = st.floats(
        0.0, 5.0, allow_nan=False, allow_infinity=False, width=64
    ).map(lambda x: 0.0 if x < 1e-6 else x)
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 6), st.integers(4, 10)),
        elements=elements,
    )


@given(psi_matrices(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_nnls_weights_nonnegative_and_optimalish(Psi, seed):
    rng = np.random.default_rng(seed)
    state = rng.uniform(0, 5, size=Psi.shape[1])
    weights, residual = infer_single(Psi, state)
    assert np.all(weights >= 0)
    assert residual == pytest.approx(
        np.linalg.norm(state - weights @ Psi), abs=1e-8
    )
    # optimality: random non-negative perturbations never do better
    for _ in range(5):
        other = np.maximum(weights + rng.normal(0, 0.1, size=len(weights)), 0)
        assert np.linalg.norm(state - other @ Psi) >= residual - 1e-8


def test_exact_recovery_of_planted_weights():
    rng = np.random.default_rng(0)
    Psi = rng.uniform(0, 1, size=(4, 20))
    w_true = np.array([0.0, 2.0, 0.5, 0.0])
    state = w_true @ Psi
    weights, residual = infer_single(Psi, state)
    assert residual < 1e-8
    assert np.allclose(weights, w_true, atol=1e-6)


def test_zero_state_zero_weights():
    Psi = np.random.default_rng(0).uniform(0, 1, size=(3, 8))
    weights, residual = infer_single(Psi, np.zeros(8))
    assert np.allclose(weights, 0.0)
    assert residual == pytest.approx(0.0)


def test_batch_matches_single():
    rng = np.random.default_rng(1)
    Psi = rng.uniform(0, 1, size=(3, 10))
    states = rng.uniform(0, 1, size=(5, 10))
    W, residuals = infer_weights(Psi, states)
    for i in range(5):
        w, r = infer_single(Psi, states[i])
        assert np.allclose(W[i], w)
        assert residuals[i] == pytest.approx(r)


def test_dimension_mismatch_raises():
    with pytest.raises(ValueError):
        infer_single(np.ones((2, 5)), np.ones(4))


def test_active_causes_threshold():
    weights = np.array([1.0, 0.05, 0.5, 0.0])
    assert list(active_causes(weights, min_fraction=0.1)) == [0, 2]


def test_active_causes_empty_weights():
    assert len(active_causes(np.zeros(4))) == 0
    assert len(active_causes(np.array([]))) == 0


def test_sparsify_inferred_keeps_row_mass():
    rng = np.random.default_rng(2)
    W = rng.uniform(0, 1, size=(6, 8))
    sparse = sparsify_inferred(W, retention=0.8)
    for i in range(6):
        assert sparse[i].sum() >= 0.8 * W[i].sum() - 1e-9
    assert (sparse > 0).sum() < W.size
