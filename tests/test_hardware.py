"""Unit tests for battery, clock and hardware accounting."""

import numpy as np
import pytest

from repro.simnet.hardware import Battery, ClockParams, EnergyParams, Hardware


@pytest.fixture
def battery():
    return Battery(EnergyParams(), np.random.default_rng(0))


def test_fresh_battery_voltage_near_full(battery):
    assert battery.voltage() == pytest.approx(3.0, abs=0.05)
    assert not battery.is_dead()


def test_voltage_declines_with_consumption(battery):
    v0 = battery.voltage()
    battery.consume(battery.capacity_j * 0.5)
    assert battery.voltage() < v0 - 0.05


def test_battery_dies_below_cutoff(battery):
    battery.consume(battery.capacity_j * 0.9)
    assert battery.is_dead()


def test_drain_multiplier_scales_consumption(battery):
    battery.drain_multiplier = 10.0
    battery.consume(1.0)
    assert battery.used_j == pytest.approx(10.0)


def test_recharge_restores(battery):
    battery.consume(battery.capacity_j)
    battery.drain_multiplier = 5.0
    battery.recharge()
    assert battery.used_j == 0.0
    assert battery.drain_multiplier == 1.0
    assert not battery.is_dead()


def test_depletion_clamped(battery):
    battery.consume(battery.capacity_j * 10)
    assert battery.depletion() == 1.0


@pytest.fixture
def hardware():
    return Hardware(EnergyParams(), ClockParams(), np.random.default_rng(0))


def test_transmit_receive_account_energy_and_radio_time(hardware):
    used0 = hardware.battery.used_j
    hardware.on_transmit()
    hardware.on_receive()
    assert hardware.battery.used_j > used0
    assert hardware.radio_on_time == pytest.approx(0.008)


def test_idle_accrual(hardware):
    hardware.accrue_idle(100.0)
    assert hardware.radio_on_time == pytest.approx(100.0 * 0.05)
    used = hardware.battery.used_j
    hardware.accrue_idle(100.0)  # same time again: no double-charge
    assert hardware.battery.used_j == used


def test_clock_skew_minimal_at_turnover(hardware):
    at_turnover = hardware.clock_skew(25.0)
    hot = hardware.clock_skew(55.0)
    cold = hardware.clock_skew(-5.0)
    assert hot > at_turnover
    assert cold > at_turnover
    assert at_turnover == pytest.approx(1.0 + 10e-6)


def test_clock_skew_is_tiny(hardware):
    # even at extremes, drift stays within ~100 ppm
    assert hardware.clock_skew(60.0) < 1.0002


def test_reboot_resets_radio_time(hardware):
    hardware.on_transmit()
    hardware.reboot(now=50.0)
    assert hardware.radio_on_time == 0.0


def test_reboot_with_fresh_battery(hardware):
    hardware.battery.consume(1000.0)
    hardware.reboot(now=0.0, fresh_battery=True)
    assert hardware.battery.used_j == 0.0
