"""IncidentTracker edge cases: boundaries, interleaving, event protocol.

The tracker's join/close rules are exact: an observation starting at
``end + time_gap_s`` still joins (strictly-greater expiry), one at exactly
``radius_m`` still merges (``<=`` distance check).  These tests pin the
boundaries down, plus the degenerate inputs batch clustering must survive.
"""

from __future__ import annotations

import pytest

from repro.core.incidents import (
    IncidentAggregator,
    IncidentTracker,
    Observation,
)


def _obs(node=1, start=0.0, end=600.0, hazard="congestion", strength=0.5,
         cause=0):
    return Observation(
        node_id=node,
        time_from=start,
        time_to=end,
        cause_index=cause,
        hazard=hazard,
        strength=strength,
    )


def test_empty_observation_set():
    tracker = IncidentTracker()
    assert tracker.flush() == []
    assert tracker.sorted_incidents() == []
    assert tracker.open_incidents() == []


def test_empty_batch_cluster(testbed_tool):
    aggregator = IncidentAggregator(testbed_tool)
    assert aggregator.cluster([]) == []


def test_single_observation_opens_then_flush_closes():
    tracker = IncidentTracker()
    events = tracker.add(_obs())
    assert [e.kind for e in events] == ["open"]
    assert events[0].incident_id == 1
    assert events[0].time == 600.0
    assert len(tracker.open_incidents()) == 1

    closes = tracker.flush()
    assert [e.kind for e in closes] == ["close"]
    assert closes[0].incident_id == 1
    assert closes[0].time == 600.0  # flush closes at the cluster's own end
    incident = closes[0].incident
    assert incident.node_ids == (1,)
    assert incident.n_observations == 1
    assert incident.peak_strength == incident.total_strength == 0.5
    assert tracker.open_incidents() == []


def test_exact_gap_boundary_joins_one_past_closes():
    gap = 600.0
    # First incident ends at t=600; an observation starting exactly at
    # 600 + gap joins (strict > expiry) ...
    tracker = IncidentTracker(time_gap_s=gap)
    tracker.add(_obs(start=0.0, end=600.0))
    events = tracker.add(_obs(node=2, start=600.0 + gap, end=2000.0))
    assert [e.kind for e in events] == ["update"]
    tracker.flush()
    assert len(tracker.incidents) == 1
    assert tracker.incidents[0].node_ids == (1, 2)

    # ... while one starting just beyond closes the old and opens a new.
    tracker = IncidentTracker(time_gap_s=gap)
    tracker.add(_obs(start=0.0, end=600.0))
    events = tracker.add(_obs(node=2, start=600.0 + gap + 1e-9, end=2000.0))
    assert [e.kind for e in events] == ["close", "open"]
    assert events[0].incident_id == 1
    assert events[1].incident_id == 2
    tracker.flush()
    assert len(tracker.incidents) == 2


def test_exact_radius_boundary_joins_beyond_splits():
    radius = 60.0
    positions = {1: (0.0, 0.0), 2: (radius, 0.0), 3: (2 * radius + 1.0, 0.0)}
    tracker = IncidentTracker(positions=positions, radius_m=radius)
    tracker.add(_obs(node=1))
    # exactly radius_m away: merges (<= check)
    assert [e.kind for e in tracker.add(_obs(node=2))] == ["update"]
    # beyond: a separate concurrent incident of the same hazard
    assert [e.kind for e in tracker.add(_obs(node=3))] == ["open"]
    tracker.flush()
    by_nodes = sorted(inc.node_ids for inc in tracker.incidents)
    assert by_nodes == [(1, 2), (3,)]


def test_unknown_position_always_joins():
    tracker = IncidentTracker(positions={1: (0.0, 0.0)}, radius_m=10.0)
    tracker.add(_obs(node=1))
    # node 99 has no position: spatial check passes by construction
    assert [e.kind for e in tracker.add(_obs(node=99))] == ["update"]


def test_interleaved_hazards_on_same_node_stay_separate():
    tracker = IncidentTracker()
    kinds = []
    for i in range(3):
        start = i * 600.0
        kinds.append([
            e.kind
            for e in tracker.add(
                _obs(start=start, end=start + 600.0, hazard="congestion")
            )
        ])
        kinds.append([
            e.kind
            for e in tracker.add(
                _obs(start=start, end=start + 600.0, hazard="reboot", cause=1)
            )
        ])
    assert kinds[0] == kinds[1] == ["open"]
    assert all(k == ["update"] for k in kinds[2:])
    tracker.flush()
    assert sorted(inc.hazard for inc in tracker.incidents) == [
        "congestion", "reboot",
    ]
    assert all(inc.n_observations == 3 for inc in tracker.incidents)


def test_incident_ids_are_stable_across_event_stream():
    tracker = IncidentTracker()
    opened = tracker.add(_obs(start=0.0, end=600.0))[0]
    updated = tracker.add(_obs(node=2, start=600.0, end=1200.0))[0]
    # far-future observation of the same hazard closes #1, opens #2
    events = tracker.add(_obs(node=3, start=9000.0, end=9600.0))
    assert opened.incident_id == updated.incident_id == 1
    assert [(e.kind, e.incident_id) for e in events] == [
        ("close", 1), ("open", 2),
    ]
    # the close event carries the final cluster snapshot
    assert events[0].incident.node_ids == (1, 2)
    assert events[0].incident.n_observations == 2


def test_aggregates_track_peak_total_and_span():
    tracker = IncidentTracker()
    tracker.add(_obs(start=0.0, end=600.0, strength=0.3))
    tracker.add(_obs(node=2, start=300.0, end=900.0, strength=0.8))
    tracker.add(_obs(node=1, start=600.0, end=1200.0, strength=0.1))
    (incident,) = [e.incident for e in tracker.flush()]
    assert incident.start == 0.0 and incident.end == 1200.0
    assert incident.peak_strength == pytest.approx(0.8)
    assert incident.total_strength == pytest.approx(1.2)
    assert incident.n_observations == 3
    assert incident.node_ids == (1, 2)
    assert incident.overlaps(500.0, 700.0)
    assert not incident.overlaps(1200.0, 1300.0)


def test_sorted_incidents_strongest_first():
    tracker = IncidentTracker()
    tracker.add(_obs(start=0.0, end=600.0, strength=0.2, hazard="reboot"))
    tracker.add(_obs(start=0.0, end=600.0, strength=0.9, hazard="congestion"))
    tracker.flush()
    ranked = tracker.sorted_incidents()
    assert [inc.hazard for inc in ranked] == ["congestion", "reboot"]


def test_flush_is_idempotent_and_describe_renders():
    tracker = IncidentTracker()
    event = tracker.add(_obs())[0]
    assert "#1" in event.describe()
    assert "congestion" in event.incident.describe()
    assert len(tracker.flush()) == 1
    assert tracker.flush() == []


# ---------------------------------------------------------------------------
# max_closed retention cap
# ---------------------------------------------------------------------------


def _n_disjoint_incidents(tracker, n, gap=2000.0):
    """Open and gap-close ``n`` single-observation incidents in sequence."""
    for i in range(n):
        start = i * gap
        tracker.add(_obs(start=start, end=start + 600.0, strength=0.1 * (i + 1)))


def test_default_retention_is_unlimited():
    tracker = IncidentTracker(time_gap_s=600.0)
    _n_disjoint_incidents(tracker, 50)
    tracker.flush()
    assert tracker.max_closed is None
    assert len(tracker.incidents) == 50
    assert tracker.n_closed_total == 50
    assert tracker.n_evicted == 0


def test_max_closed_caps_retention_and_counts_evictions():
    tracker = IncidentTracker(time_gap_s=600.0, max_closed=3)
    _n_disjoint_incidents(tracker, 10)
    tracker.flush()
    assert len(tracker.incidents) == 3
    assert tracker.n_closed_total == 10
    assert tracker.n_evicted == 7
    # Close-order eviction: the retained ones are the newest three.
    starts = [inc.start for inc in tracker.incidents]
    assert starts == sorted(starts)
    assert starts[0] == 7 * 2000.0


def test_max_closed_does_not_change_the_event_stream():
    capped = IncidentTracker(time_gap_s=600.0, max_closed=1)
    free = IncidentTracker(time_gap_s=600.0)
    streams = []
    for tracker in (capped, free):
        events = []
        for i in range(6):
            start = i * 2000.0
            events += tracker.add(_obs(start=start, end=start + 600.0))
        events += tracker.flush()
        streams.append(events)
    capped_events, free_events = streams
    assert [e.kind for e in capped_events] == [e.kind for e in free_events]
    assert [e.incident for e in capped_events] == [e.incident for e in free_events]


def test_max_closed_zero_retains_nothing():
    tracker = IncidentTracker(max_closed=0)
    tracker.add(_obs())
    tracker.flush()
    assert tracker.incidents == []
    assert tracker.n_closed_total == 1
    assert tracker.n_evicted == 1


def test_max_closed_rejects_negative():
    with pytest.raises(ValueError, match="max_closed"):
        IncidentTracker(max_closed=-1)
