"""Tests for planted-root-cause data and NMF recovery on it."""

import numpy as np
import pytest

from repro.core.nmf import nmf, nmf_best_of
from repro.core.sparsify import sparsify_weights
from repro.traces.synthetic import (
    generate_planted_dataset,
    match_components,
    planted_cause_names,
    planted_psi,
    recovery_score,
)


def test_planted_psi_shape_and_range():
    psi = planted_psi(4)
    assert psi.shape == (4, 43)
    assert np.all(psi >= 0.0)
    assert np.all(psi <= 1.0)


def test_planted_psi_validation():
    with pytest.raises(ValueError):
        planted_psi(0)
    with pytest.raises(ValueError):
        planted_psi(99)


def test_planted_signatures_are_distinct():
    psi = planted_psi(6)
    for i in range(6):
        for j in range(i + 1, 6):
            cos = psi[i] @ psi[j] / (
                np.linalg.norm(psi[i]) * np.linalg.norm(psi[j])
            )
            assert cos < 0.99


def test_dataset_structure():
    data = generate_planted_dataset(n_states=100, n_causes=4)
    assert data.E.shape == (100, 43)
    assert np.all(data.E >= 0)
    assert data.W_true.shape == (100, 4)
    assert len(data.cause_names) == 4
    # sparsity: every state uses between 1 and 3 causes
    active = (data.W_true > 0).sum(axis=1)
    assert active.min() >= 1
    assert active.max() <= 3


def test_match_components_identity():
    psi = planted_psi(4)
    assignment, sims = match_components(psi, psi)
    assert sorted(assignment) == [0, 1, 2, 3]
    assert np.allclose(sims, 1.0)


def test_match_components_permutation():
    psi = planted_psi(4)
    permuted = psi[[2, 0, 3, 1]]
    assignment, sims = match_components(permuted, psi)
    assert assignment == [1, 3, 0, 2]
    assert np.allclose(sims, 1.0)


def test_match_is_injective():
    psi = planted_psi(3)
    assignment, _ = match_components(psi, psi)
    assert len(set(assignment)) == 3


def test_nmf_recovers_planted_causes():
    data = generate_planted_dataset(n_states=500, n_causes=4,
                                    noise_sigma=0.02,
                                    rng=np.random.default_rng(1))
    result = nmf_best_of(data.E, 4, restarts=5, n_iter=800, tol=1e-9)
    score = recovery_score(result.Psi, data.Psi_true)
    assert score > 0.9, f"recovery score {score:.3f}"


def test_recovery_degrades_under_heavy_noise():
    scores = []
    for sigma in (0.02, 1.0):
        data = generate_planted_dataset(
            n_states=400, n_causes=4, noise_sigma=sigma,
            rng=np.random.default_rng(1),
        )
        result = nmf_best_of(data.E, 4, restarts=3, n_iter=400)
        scores.append(recovery_score(result.Psi, data.Psi_true))
    assert scores[0] > scores[1] + 0.05
    assert scores[0] > 0.9


def test_underranked_fit_cannot_recover_all_causes():
    data = generate_planted_dataset(n_states=400, n_causes=4,
                                    noise_sigma=0.02,
                                    rng=np.random.default_rng(1))
    full = nmf_best_of(data.E, 4, restarts=3, n_iter=400)
    half = nmf_best_of(data.E, 2, restarts=3, n_iter=400)
    assert recovery_score(full.Psi, data.Psi_true) > recovery_score(
        half.Psi, data.Psi_true
    ) + 0.2


def test_sparsified_weights_keep_planted_support():
    data = generate_planted_dataset(n_states=400, n_causes=4,
                                    noise_sigma=0.01,
                                    rng=np.random.default_rng(1))
    result = nmf_best_of(data.E, 4, restarts=5, n_iter=800, tol=1e-9)
    assignment, _ = match_components(result.Psi, data.Psi_true)
    sparse = sparsify_weights(result.W, retention=0.9).W_sparse
    # for most states, the recovered active set intersects the true one
    hits = 0
    for i in range(data.E.shape[0]):
        true_active = set(np.flatnonzero(data.W_true[i] > 0))
        recovered_active = {
            p for p, r in enumerate(assignment) if sparse[i, r] > 0
        }
        if true_active & recovered_active:
            hits += 1
    assert hits / data.E.shape[0] > 0.9
