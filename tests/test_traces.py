"""Tests for trace records, IO round-trip and PRR analysis."""

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS
from repro.traces.io import export_snapshots_csv, load_trace_jsonl, save_trace_jsonl
from repro.traces.prr import degraded_windows, prr_series
from repro.traces.records import GroundTruth, SnapshotRow, Trace


def make_trace(n_nodes=3, epochs=5, period=100.0):
    rows = []
    arrivals = []
    rng = np.random.default_rng(0)
    for node in range(1, n_nodes + 1):
        for epoch in range(epochs):
            t = epoch * period + node
            rows.append(
                SnapshotRow(
                    node_id=node,
                    epoch=epoch,
                    generated_at=t,
                    received_at=t + 1.0,
                    values=rng.uniform(0, 10, NUM_METRICS),
                )
            )
            for _ in range(3):
                arrivals.append((t + 1.0, node))
    return Trace(
        rows=rows,
        metadata={"report_period_s": period, "n_nodes": n_nodes + 1,
                  "sim_end": epochs * period},
        ground_truth=[GroundTruth("node_failure", (2,), 150.0, 250.0)],
        packets_generated=n_nodes * epochs * 3,
        packets_received=len(arrivals),
        arrivals=arrivals,
    )


def test_rows_sorted_by_node_epoch():
    trace = make_trace()
    keys = [(r.node_id, r.epoch) for r in trace.rows]
    assert keys == sorted(keys)


def test_snapshot_row_validates_shape():
    with pytest.raises(ValueError):
        SnapshotRow(1, 0, 0.0, 0.0, np.zeros(7))


def test_node_ids_and_rows_for():
    trace = make_trace()
    assert trace.node_ids == [1, 2, 3]
    assert len(trace.rows_for(2)) == 5


def test_window_filters_by_generated_time():
    trace = make_trace()
    sub = trace.window(100.0, 300.0)
    assert all(100.0 <= r.generated_at < 300.0 for r in sub.rows)
    assert len(sub) == 6


def test_delivery_ratio():
    trace = make_trace()
    assert trace.delivery_ratio() == pytest.approx(1.0)


def test_time_span():
    trace = make_trace(n_nodes=2, epochs=4, period=50.0)
    start, end = trace.time_span()
    assert start == pytest.approx(1.0)  # node 1, epoch 0 at t=0*50+1
    assert end == pytest.approx(3 * 50.0 + 2)  # node 2, last epoch


def test_time_span_empty():
    assert Trace(rows=[]).time_span() == (0.0, 0.0)


def test_ground_truth_in_window():
    trace = make_trace()
    assert trace.ground_truth_in(200.0, 300.0)
    assert not trace.ground_truth_in(300.0, 400.0)


def test_jsonl_roundtrip(tmp_path):
    trace = make_trace()
    path = tmp_path / "trace.jsonl"
    save_trace_jsonl(trace, path)
    loaded = load_trace_jsonl(path)
    assert len(loaded) == len(trace)
    assert loaded.metadata["report_period_s"] == 100.0
    assert loaded.packets_generated == trace.packets_generated
    assert loaded.ground_truth[0].kind == "node_failure"
    assert loaded.ground_truth[0].node_ids == (2,)
    assert np.allclose(loaded.rows[0].values, trace.rows[0].values, atol=1e-5)
    assert loaded.arrivals == trace.arrivals


def test_load_rejects_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError):
        load_trace_jsonl(path)


def test_load_rejects_bad_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"format_version": 99, "metric_names": []}\n')
    with pytest.raises(ValueError):
        load_trace_jsonl(path)


def test_csv_export(tmp_path):
    trace = make_trace()
    path = tmp_path / "trace.csv"
    export_snapshots_csv(trace, path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 1 + len(trace)
    assert lines[0].startswith("node_id,epoch,")


def test_prr_series_full_delivery():
    trace = make_trace()
    centers, prr = prr_series(trace, bin_seconds=100.0)
    assert len(centers) > 0
    assert np.all(prr > 0.9)


def test_prr_series_empty_trace():
    trace = Trace(rows=[], metadata={})
    centers, prr = prr_series(trace)
    assert len(centers) == 0


def test_prr_detects_outage():
    trace = make_trace(epochs=20)
    # drop all arrivals in [500, 1000)
    trace.arrivals = [(t, n) for (t, n) in trace.arrivals if not 500 <= t < 1000]
    centers, prr = prr_series(trace, bin_seconds=100.0)
    windows = degraded_windows(centers, prr, threshold_fraction=0.8)
    assert windows
    start, end = windows[0]
    assert 400 <= start <= 600
    assert 900 <= end <= 1100


def test_degraded_windows_flat_series():
    centers = np.arange(10.0)
    prr = np.ones(10)
    assert degraded_windows(centers, prr) == []
