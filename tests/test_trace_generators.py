"""Tests for the testbed and CitySee trace generators."""

import numpy as np
import pytest

from repro.traces.citysee import CitySeeProfile, generate_citysee_trace
from repro.traces.io import load_trace_jsonl
from repro.traces.testbed import (
    TestbedScenario,
    build_failure_schedule,
    generate_testbed_trace,
)
from repro.simnet.topology import grid_topology


def test_testbed_trace_shape(testbed_trace):
    # 45-node grid, ~2 h of 3-minute reports: in the ballpark of the
    # paper's 1,639 packets
    assert 1000 <= len(testbed_trace) <= 2600
    assert len(testbed_trace.node_ids) >= 40
    assert testbed_trace.delivery_ratio() > 0.8


def test_testbed_ground_truth_mix(testbed_trace):
    kinds = {g.kind for g in testbed_trace.ground_truth}
    assert "node_failure" in kinds
    assert "node_reboot" in kinds
    failures = [g for g in testbed_trace.ground_truth if g.kind == "node_failure"]
    assert len(failures) >= 10


def test_testbed_positions_metadata(testbed_trace):
    positions = testbed_trace.metadata["positions"]
    assert len(positions) == 45


def test_failure_schedule_local_is_clustered():
    topo = grid_topology(rows=9, cols=5, spacing=8.0)
    rng = np.random.default_rng(0)
    faults = build_failure_schedule(
        topo, TestbedScenario.LOCAL, rng, first_event_at=0.0, last_event_at=0.0
    )
    removed = [f.node_id for f in faults if type(f).__name__ == "NodeFailure"]
    xs = [topo.positions[n][0] for n in removed]
    ys = [topo.positions[n][1] for n in removed]
    spread_local = np.std(xs) + np.std(ys)

    rng = np.random.default_rng(0)
    faults = build_failure_schedule(
        topo, TestbedScenario.EXPANSIVE, rng, first_event_at=0.0, last_event_at=0.0
    )
    removed = [f.node_id for f in faults if type(f).__name__ == "NodeFailure"]
    xs = [topo.positions[n][0] for n in removed]
    ys = [topo.positions[n][1] for n in removed]
    spread_expansive = np.std(xs) + np.std(ys)
    assert spread_local < spread_expansive


def test_failure_schedule_keeps_network_populated():
    topo = grid_topology(rows=9, cols=5, spacing=8.0)
    rng = np.random.default_rng(1)
    faults = build_failure_schedule(
        topo, TestbedScenario.EXPANSIVE, rng,
        first_event_at=0.0, last_event_at=7200.0,
    )
    failures = sum(1 for f in faults if type(f).__name__ == "NodeFailure")
    reboots = sum(1 for f in faults if type(f).__name__ == "NodeReboot")
    assert failures > reboots > 0


def test_citysee_tiny_trace(tiny_citysee_trace):
    assert len(tiny_citysee_trace) > 1000
    assert tiny_citysee_trace.delivery_ratio() > 0.6
    kinds = {g.kind for g in tiny_citysee_trace.ground_truth}
    assert "node_reboot" in kinds
    assert "interference" in kinds


def test_citysee_cache_roundtrip(tmp_path):
    profile = CitySeeProfile(
        n_nodes=12, days=0.5, day_seconds=1800.0, report_period_s=60.0,
        area=(150.0, 100.0), comm_radius_m=80.0, seed=5,
    )
    first = generate_citysee_trace(profile, use_cache=True, cache_dir=tmp_path)
    files = list(tmp_path.glob("citysee-*.jsonl"))
    assert len(files) == 1
    second = generate_citysee_trace(profile, use_cache=True, cache_dir=tmp_path)
    assert len(first) == len(second)
    assert np.allclose(first.rows[0].values, second.rows[0].values, atol=1e-5)


def test_citysee_profiles_have_same_epochs_per_day():
    for profile in (CitySeeProfile.small(), CitySeeProfile.medium(),
                    CitySeeProfile.full()):
        epochs_per_day = profile.day_seconds / profile.report_period_s
        assert 50 <= epochs_per_day <= 150


def test_citysee_episode_recorded_in_ground_truth(tmp_path):
    profile = CitySeeProfile(
        n_nodes=12, days=2.0, day_seconds=1800.0, report_period_s=60.0,
        area=(150.0, 100.0), comm_radius_m=80.0, seed=5,
        reboots_per_day=0.0, interference_per_day=0.0, loops_per_day=0.0,
        degradations_per_day=0.0, bursts_per_day=0.0, drains_per_day=0.0,
    )
    trace = generate_citysee_trace(
        profile, episode=True, episode_days=(0.5, 1.0), use_cache=False
    )
    kinds = {g.kind for g in trace.ground_truth}
    assert "interference" in kinds
    assert "node_failure" in kinds
