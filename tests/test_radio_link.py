"""Unit tests for the radio model and the link/medium layer."""

import numpy as np
import pytest

from repro.simnet.environment import Environment, NoiseRegion
from repro.simnet.link import DegradationWindow, Link, Medium
from repro.simnet.radio import RadioParams, path_loss_db, prr_from_snr
from repro.simnet.topology import grid_topology


@pytest.fixture
def params():
    return RadioParams()


def test_path_loss_increases_with_distance(params):
    assert path_loss_db(100.0, params) > path_loss_db(10.0, params)


def test_path_loss_clamped_below_reference(params):
    assert path_loss_db(0.01, params) == pytest.approx(
        path_loss_db(params.path_loss_d0, params)
    )


def test_prr_monotone_in_snr(params):
    snrs = np.linspace(-20, 30, 50)
    prrs = [prr_from_snr(float(s), params) for s in snrs]
    assert all(b >= a for a, b in zip(prrs, prrs[1:]))
    assert prrs[0] < 0.01
    assert prrs[-1] > 0.99


def test_prr_half_at_midpoint(params):
    assert prr_from_snr(params.snr_half_db, params) == pytest.approx(0.5)


def test_prr_extreme_snr_no_overflow(params):
    assert prr_from_snr(1000.0, params) == 1.0
    assert prr_from_snr(-1000.0, params) == 0.0


@pytest.fixture
def medium():
    topo = grid_topology(rows=3, cols=3, spacing=20.0)
    env = Environment(rng=np.random.default_rng(0))
    return Medium(
        topology=topo,
        environment=env,
        params=RadioParams(),
        rng=np.random.default_rng(1),
        max_range=50.0,
    )


def test_links_exist_within_range(medium):
    assert medium.link(0, 1) is not None
    assert medium.link(1, 0) is not None


def test_no_link_beyond_range(medium):
    # corners are 2*20*sqrt(2) ~ 56.6 m apart, beyond max_range=50
    assert medium.link(0, 8) is None
    assert medium.frame_success_probability(0, 8, 0.0) == 0.0


def test_rssi_falls_with_distance(medium):
    near = np.mean([medium.rssi(4, n, 0.0) for n in (1, 3, 5, 7)])
    far = np.mean([medium.rssi(4, n, 0.0) for n in (0, 2, 6, 8)])
    assert near > far


def test_link_asymmetry_is_small(medium):
    ab = medium.rssi(0, 1, 0.0)
    ba = medium.rssi(1, 0, 0.0)
    assert abs(ab - ba) < 10.0


def test_degradation_window_reduces_rssi(medium):
    link = medium.link(0, 1)
    before = link.rssi(10.0)
    link.add_degradation(DegradationWindow(start=20.0, end=30.0, extra_db=20.0))
    during = link.rssi(25.0)
    after = link.rssi(35.0)
    assert during < before - 10.0
    assert after > during + 10.0


def test_degrade_region_affects_touching_links(medium):
    affected = medium.degrade_region(
        center=(0.0, 0.0), radius=5.0, start=0.0, end=10.0, extra_db=10.0
    )
    # node 0 sits at (0,0): every directed link touching it is hit
    assert affected >= len(medium.links_from(0))


def test_interference_lowers_success_probability(medium):
    p_before = medium.frame_success_probability(0, 1, 0.0)
    medium.environment.add_noise_region(
        NoiseRegion(center=(0.0, 0.0), radius=100.0, start=100.0, end=200.0,
                    delta_db=25.0)
    )
    p_during = medium.frame_success_probability(0, 1, 150.0)
    assert p_during < p_before


def test_fading_is_temporally_correlated(medium):
    link = medium.link(0, 1)
    r1 = link.rssi(1000.0)
    r2 = link.rssi(1000.5)  # half a second later: fading barely moves
    assert abs(r1 - r2) < 3.0


def test_neighbors_listing(medium):
    assert set(medium.neighbors(4)) == {0, 1, 2, 3, 5, 6, 7, 8}
