"""``vn2 watch``: the online mode's CLI face.

Runs the real ``main()`` entry point in-process against saved models and
trace files on disk — no-follow batch replay, follow mode against a
background writer, the JSONL event log (``--output`` and
``$VN2_WATCH_LOG``), and the failure path for a missing trace.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.traces.frame import as_frame
from repro.traces.io import save_frame

EVENT_KEYS = {
    "kind", "incident_id", "time", "hazard", "node_ids", "start", "end",
    "peak_strength", "total_strength", "n_observations",
}


@pytest.fixture(scope="module")
def watch_env(testbed_tool, testbed_trace, tmp_path_factory):
    """A saved model and a JSONL trace, as a deployment would have them."""
    root = tmp_path_factory.mktemp("watch")
    model = root / "model"
    testbed_tool.save(model)
    trace = root / "trace.jsonl"
    save_frame(as_frame(testbed_trace), trace, fmt="jsonl")
    return model, trace


def _read_events(path):
    events = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    for event in events:
        assert set(event) == EVENT_KEYS
    return events


def test_watch_no_follow_smoke(watch_env, tmp_path, capsys):
    model, trace = watch_env
    log = tmp_path / "incidents.jsonl"
    rc = main([
        "watch", str(trace), "--model", str(model),
        "--no-follow", "--output", str(log),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "watched" in out and "incidents" in out

    events = _read_events(log)
    assert events, "no incident events logged"
    kinds = [e["kind"] for e in events]
    assert set(kinds) <= {"open", "update", "close"}
    opened = [e["incident_id"] for e in events if e["kind"] == "open"]
    closed = [e["incident_id"] for e in events if e["kind"] == "close"]
    assert sorted(opened) == sorted(closed)  # finish() flushes every open


def test_watch_env_var_names_the_log(watch_env, tmp_path, monkeypatch):
    model, trace = watch_env
    log = tmp_path / "from-env.jsonl"
    monkeypatch.setenv("VN2_WATCH_LOG", str(log))
    rc = main(["watch", str(trace), "--model", str(model), "--no-follow"])
    assert rc == 0
    assert _read_events(log)


def test_watch_follows_growing_trace(watch_env, tmp_path, capsys):
    """A background writer appends the trace while watch follows it; the
    idle timeout ends the session and the events match a no-follow pass."""
    model, source = watch_env
    lines = source.read_text().splitlines()
    header, rows = lines[0], lines[1:300]

    trace = tmp_path / "growing.jsonl"
    log = tmp_path / "follow.jsonl"

    def writer():
        with trace.open("a", encoding="utf-8") as fh:
            fh.write(header + "\n")
            for row in rows:
                fh.write(row + "\n")
            fh.flush()

    # The file does not exist yet when watch starts: it must wait for the
    # header to appear rather than crash.
    thread = threading.Thread(target=writer)
    thread.start()
    try:
        rc = main([
            "watch", str(trace), "--model", str(model),
            "--poll", "0.05", "--idle-timeout", "2.0",
            "--output", str(log),
        ])
    finally:
        thread.join()
    assert rc == 0
    followed = _read_events(log)

    ref_log = tmp_path / "reference.jsonl"
    reference = tmp_path / "reference-trace.jsonl"
    reference.write_text("\n".join([header, *rows]) + "\n")
    assert main([
        "watch", str(reference), "--model", str(model),
        "--no-follow", "--output", str(ref_log),
    ]) == 0
    assert followed == _read_events(ref_log)
    capsys.readouterr()  # drain


def test_watch_missing_trace_fails_cleanly(watch_env, tmp_path, capsys):
    model, _trace = watch_env
    rc = main([
        "watch", str(tmp_path / "nope.jsonl"), "--model", str(model),
        "--no-follow",
    ])
    assert rc == 1
    assert "no readable trace" in capsys.readouterr().err


def test_watch_stdout_prints_incident_lines(watch_env, capsys):
    model, trace = watch_env
    rc = main(["watch", str(trace), "--model", str(model), "--no-follow"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "OPEN" in out and "CLOSE" in out
