"""Shared fixtures: expensive traces are built once per session.

Trace generation dominates test cost, so every trace used by more than one
test lives here as a session-scoped fixture.  The CitySee generator also
caches to disk (keyed by parameters), which makes repeat ``pytest`` runs
much faster.
"""

from __future__ import annotations

import pytest

from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology


@pytest.fixture(scope="session")
def testbed_trace():
    """The paper's testbed run (expansive scenario, seed 7)."""
    from repro.traces.testbed import TestbedScenario, generate_testbed_trace

    return generate_testbed_trace(TestbedScenario.EXPANSIVE, seed=7)


@pytest.fixture(scope="session")
def testbed_trace_local():
    """The paper's testbed run (local scenario, seed 7)."""
    from repro.traces.testbed import TestbedScenario, generate_testbed_trace

    return generate_testbed_trace(TestbedScenario.LOCAL, seed=7)


@pytest.fixture(scope="session")
def tiny_citysee_trace():
    """A tiny CitySee-like run with background faults (disk-cached)."""
    from repro.traces.citysee import CitySeeProfile, generate_citysee_trace

    return generate_citysee_trace(CitySeeProfile.tiny(), episode=False)


@pytest.fixture(scope="session")
def multicause_trace():
    """The controlled three-simultaneous-hazards trace."""
    from repro.analysis.baseline_comparison import build_multicause_trace

    return build_multicause_trace()


@pytest.fixture(scope="session")
def small_grid_network():
    """A fresh, short 5x5 grid run (for network-level assertions)."""
    topology = grid_topology(rows=5, cols=5, spacing=9.0)
    config = NetworkConfig(
        report_period_s=120.0,
        beacon_min_s=10.0,
        beacon_max_s=120.0,
        seed=5,
        radio=RadioParams(tx_power_dbm=-10.0),
        max_range_m=40.0,
    )
    network = Network(topology, config)
    network.run(1800.0)
    return network


@pytest.fixture(scope="session")
def testbed_tool(testbed_trace):
    """VN2 trained the paper's way on the testbed trace's first hour."""
    from repro.analysis.testbed_experiments import fit_testbed_tool, train_test_split

    train, _test = train_test_split(testbed_trace)
    return fit_testbed_tool(train)


@pytest.fixture(scope="session")
def tiny_citysee_tool(tiny_citysee_trace):
    """VN2 trained with the CitySee protocol on the tiny trace."""
    from repro.core.pipeline import VN2, VN2Config

    return VN2(VN2Config(rank=12)).fit(tiny_citysee_trace)
