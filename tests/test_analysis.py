"""Tests for the experiment harnesses (reporting + figure logic)."""

import numpy as np
import pytest

from repro.analysis.reporting import format_series, format_table, sparkline


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "---" in lines[1]


def test_sparkline_range():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] != line[-1]


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    assert len(set(sparkline([5, 5, 5]))) == 1


def test_format_series_summary():
    text = format_series("prr", range(100), np.linspace(0, 1, 100))
    assert text.startswith("prr:")
    assert "100 pts" in text


# ---------------------------------------------------------------------
# Figures 3/4 on the tiny CitySee trace
# ---------------------------------------------------------------------


def test_fig3a(tiny_citysee_trace):
    from repro.analysis.figures34 import exp_fig3a

    result = exp_fig3a(tiny_citysee_trace)
    assert result.n_states > 500
    assert 0 < result.n_exceptions < result.n_states
    assert len(result.series) == 4
    for series in result.series:
        assert len(series.deltas) == result.n_states
        assert (np.diff(series.times) >= 0).all()
    assert "exceptions" in result.to_text()


def test_fig3b_shapes(tiny_citysee_trace):
    from repro.analysis.figures34 import exp_fig3b

    result = exp_fig3b(tiny_citysee_trace, ranks=range(4, 21, 4))
    # dense error falls with r
    assert result.accuracy_dense[0] > result.accuracy_dense[-1]
    # sparse curve dominates dense
    assert np.all(result.accuracy_sparse >= result.accuracy_dense - 1e-9)
    assert result.chosen_rank in result.ranks


def test_fig3c_multicause(tiny_citysee_trace):
    from repro.analysis.figures34 import exp_fig3c

    result = exp_fig3c(tiny_citysee_trace, rank=12)
    assert result.points
    # the paper's core claim: exceptions map to a SMALL SUBSET of causes,
    # often more than one
    assert 1.0 <= result.mean_causes_per_exception <= 8.0
    assert result.max_causes_per_exception >= 2


def test_fig4_families(tiny_citysee_tool):
    from repro.analysis.figures34 import exp_fig4

    result = exp_fig4(tiny_citysee_tool)
    assert result.rows
    assert len(result.families_covered) >= 2
    for row in result.rows:
        assert row.profile.shape == (43,)
        assert np.abs(row.profile).max() <= 1.0 + 1e-9


# ---------------------------------------------------------------------
# Figure 5 on the testbed trace
# ---------------------------------------------------------------------


def test_fig5b(testbed_trace):
    from repro.analysis.testbed_experiments import exp_fig5b

    result = exp_fig5b(testbed_trace)
    assert result.weights.shape[1] == 10
    assert result.points
    usage = (result.weights > 0).mean(axis=0)
    # sparsified attribution: no row is used by every state, and the rows
    # differ in usage (the scatter has structure)
    assert usage.min() < usage.max()


def test_fig5cf_signatures(testbed_tool):
    from repro.analysis.testbed_experiments import exp_fig5cf

    result = exp_fig5cf(testbed_tool)
    assert result.found("parent_unreachable")
    assert result.found("link_dynamics")
    assert result.found("normal_states")


def test_fig5g_profiles(testbed_tool, testbed_trace):
    from repro.analysis.testbed_experiments import exp_fig5g

    result = exp_fig5g(testbed_tool, testbed_trace)
    assert result.n_failure_states > 10
    assert result.n_reboot_states > 10
    assert result.failure_profile.shape == (10,)
    # the two event types produce distinguishable fault-row profiles
    assert result.profile_distance > 0.05


def test_fig5hi_positive_transfer(testbed_trace, testbed_trace_local):
    from repro.analysis.testbed_experiments import exp_fig5hi
    from repro.traces.testbed import TestbedScenario

    expansive = exp_fig5hi(TestbedScenario.EXPANSIVE, trace=testbed_trace)
    local = exp_fig5hi(TestbedScenario.LOCAL, trace=testbed_trace_local)
    # the paper's robust claim: training and testing profiles are
    # positively related in both scenarios
    assert expansive.profile_correlation > 0.9
    assert local.profile_correlation > 0.9


# ---------------------------------------------------------------------
# ablations + baselines (fast paths on fixtures)
# ---------------------------------------------------------------------


def test_ablation_filter(tiny_citysee_trace):
    from repro.analysis.ablations import exp_ablation_filter

    result = exp_ablation_filter(tiny_citysee_trace, rank=10)
    assert result.with_filter.n_training_states < result.without_filter.n_training_states
    # the filtered model reconstructs the exception states at least as well
    assert (
        result.with_filter.exception_reconstruction_error
        <= result.without_filter.exception_reconstruction_error + 0.05
    )


def test_ablation_sparsify(tiny_citysee_trace):
    from repro.analysis.ablations import exp_ablation_sparsify

    result = exp_ablation_sparsify(tiny_citysee_trace, rank=10)
    retentions = [p.retention for p in result.points]
    accuracies = [p.accuracy for p in result.points]
    causes = [p.mean_active_causes for p in result.points]
    # more retention -> better accuracy but denser explanations
    assert accuracies == sorted(accuracies, reverse=True)
    assert causes == sorted(causes)
    # full retention matches the dense factorization
    assert accuracies[-1] == pytest.approx(result.dense_accuracy, rel=1e-6)


def test_baseline_comparison(multicause_trace):
    from repro.analysis.baseline_comparison import exp_baselines

    result = exp_baselines(multicause_trace)
    assert result.n_multicause_states >= 5
    vn2 = result.score_of("VN2")
    sympathy = result.score_of("Sympathy")
    # the headline claim: multi-cause attribution beats single-cause trees
    assert vn2.attribution_recall > sympathy.attribution_recall
    assert sympathy.mean_causes_named <= 1.0
    for method in ("AgnosticDiagnosis", "PCA"):
        assert result.score_of(method).attribution_recall == 0.0


def test_table1_quick():
    from repro.analysis.table1 import exp_table1

    result = exp_table1(quick=True)
    assert result.all_passed, result.to_text()
    hazards = {c.hazard for c in result.checks}
    assert {"routing_loop", "contention", "queue_overflow"} <= hazards
