"""The multi-process sink cluster, driven over real sockets.

The acceptance criteria of the cluster PR live here:

* **Differential**: a trace replayed through a ``backend="pool"`` server
  produces the exact same incident-event objects — bit-identical
  strengths, drain flush included — as :meth:`VN2.diagnose_stream`
  locally.  The worker boundary must be invisible.
* **Isolation**: deployments routed to *different worker processes*
  diagnose without cross-talk; each matches its own solo replay.
* **Handoff** (chaos): SIGKILL a worker while load is flowing.  The
  front door replays that worker's unacked batches to a survivor
  (at-least-once), deployments on the other worker stay bit-identical,
  and no event ever bleeds across deployments.
* **Rollup**: the cluster ``/metrics?format=prometheus`` scrape is one
  merged exposition with per-worker streaming series, and it validates.

Workers are real forked processes; clients are the real SDK.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.streaming import iter_packets
from repro.obs import validate_exposition
from repro.service import protocol
from repro.service.backends import HashRing
from repro.service.client import ServiceClient, http_get_json
from repro.service.loadgen import replay_trace_fanout
from repro.service.server import ServiceConfig, start_service_thread
from repro.traces.frame import as_frame


def _prometheus_text(handle) -> str:
    from urllib.request import urlopen

    url = (
        f"http://{handle.host}:{handle.http_port}/metrics?format=prometheus"
    )
    with urlopen(url, timeout=10.0) as response:
        return response.read().decode("utf-8")


def _reference_events(tool, source):
    """Incident-event objects of a local (in-process) streaming replay."""
    events = []
    for update in tool.diagnose_stream(source):
        events.extend(protocol.incident_event_obj(e) for e in update.events)
    return events


def _deployments_per_worker(n_workers: int, per_worker: int):
    """Deployment names guaranteed to land on each of ``n_workers`` workers.

    The front door routes with ``HashRing([w0..wN-1])``, so the test can
    precompute placement and *choose* names that exercise every worker —
    no flaky "hope the hash spreads" sampling.
    """
    ring = HashRing([f"w{i}" for i in range(n_workers)])
    placed = {f"w{i}": [] for i in range(n_workers)}
    i = 0
    while any(len(names) < per_worker for names in placed.values()):
        name = f"dep-{i}"
        owner = ring.lookup(name)
        if len(placed[owner]) < per_worker:
            placed[owner].append(name)
        i += 1
    return placed


class _Subscriber(threading.Thread):
    """Subscribe synchronously, then collect messages until close.

    Keeps the *full* framed messages (not just the event payloads) so
    the chaos test can prove no message carried a foreign deployment.
    """

    def __init__(self, port: int, deployment: str):
        super().__init__(daemon=True)
        self.deployment = deployment
        self.client = ServiceClient(port=port)
        self.client._ensure_connected()
        reply = self.client._roundtrip(protocol.subscribe(deployment, 1))
        reply.pop("_reconnects", None)
        assert reply == protocol.subscribed(1, deployment)
        self.messages = []
        self.start()

    @property
    def events(self):
        return [m["event"] for m in self.messages]

    def run(self):
        while True:
            try:
                message = self.client._read_message()
            except (ConnectionError, OSError):
                return
            if message.get("type") == "event":
                self.messages.append(message)


@pytest.fixture(scope="module")
def testbed_frame(testbed_trace):
    return as_frame(testbed_trace)


def _pool_config(workers: int) -> ServiceConfig:
    # backend="pool" forces worker processes even at workers=1, so the
    # single-worker differential really crosses the pipe boundary.
    return ServiceConfig(port=0, http_port=0, workers=workers,
                         backend="pool", heartbeat_s=0.1)


def test_single_pool_worker_matches_local_replay(testbed_tool, testbed_frame):
    reference = _reference_events(testbed_tool, testbed_frame)
    assert reference, "testbed replay produced no incident events"

    with start_service_thread(testbed_tool, _pool_config(1)) as handle:
        health = http_get_json(handle.host, handle.http_port, "/health")
        assert health["backend"] == "pool"
        assert [w["id"] for w in health["workers"]] == ["w0"]
        assert all(w["alive"] for w in health["workers"])

        subscriber = _Subscriber(handle.port, "testbed")
        with ServiceClient(port=handle.port) as client:
            packets = list(iter_packets(testbed_frame))
            for start in range(0, len(packets), 256):
                client.submit("testbed", packets[start:start + 256])
        handle.stop(drain=True)  # graceful: drain_all -> w_bye from worker
    subscriber.join(timeout=10.0)

    # Bit-identical through fork + pipe + replay machinery.
    assert subscriber.events == reference


def test_pool_isolates_deployments_across_workers(testbed_tool, testbed_frame):
    mid = float(testbed_frame.generated_at[len(testbed_frame) // 2])
    frames = {"a": testbed_frame, "b": testbed_frame.window(0.0, mid)}
    placed = _deployments_per_worker(2, 1)
    names = {"a": placed["w0"][0], "b": placed["w1"][0]}
    reference = {
        key: _reference_events(testbed_tool, frame)
        for key, frame in frames.items()
    }
    assert reference["a"] != reference["b"]

    with start_service_thread(testbed_tool, _pool_config(2)) as handle:
        subs = {key: _Subscriber(handle.port, names[key]) for key in frames}
        packets = {key: list(iter_packets(f)) for key, f in frames.items()}
        with ServiceClient(port=handle.port) as client:
            # One connection, interleaved batches, two worker processes:
            # isolation must come from routing, not connection affinity.
            step = 64
            for start in range(0, max(map(len, packets.values())), step):
                for key in ("a", "b"):
                    if start < len(packets[key]):
                        client.submit(names[key],
                                      packets[key][start:start + step])

        doc = http_get_json(handle.host, handle.http_port, "/metrics")
        assert set(doc["deployments"]) == set(names.values())
        assert doc["server"]["backend"] == "pool"
        for key in frames:
            shard = doc["deployments"][names[key]]
            assert shard["worker"] == ("w0" if key == "a" else "w1")
            assert shard["packets"] == len(packets[key])
        assert doc["totals"]["packets"] == sum(map(len, packets.values()))

        # The merged scrape is one valid exposition with per-worker
        # streaming series and front-door service series side by side.
        text = _prometheus_text(handle)
        assert validate_exposition(text) > 0
        assert 'worker="w0"' in text and 'worker="w1"' in text
        for key in frames:
            assert (
                "repro_service_packets_accepted_total"
                f'{{deployment="{names[key]}"}}'
            ) in text
        assert "repro_incidents_open{" in text

        incidents = http_get_json(handle.host, handle.http_port,
                                  "/incidents")
        assert set(incidents["deployments"]) == set(names.values())

        handle.stop(drain=True)
    for sub in subs.values():
        sub.join(timeout=10.0)

    assert subs["a"].events == reference["a"]
    assert subs["b"].events == reference["b"]


def test_worker_kill_hands_off_without_loss_or_bleed(testbed_tool,
                                                     testbed_frame):
    placed = _deployments_per_worker(2, 1)
    victim_dep, survivor_dep = placed["w0"][0], placed["w1"][0]
    reference = _reference_events(testbed_tool, testbed_frame)

    with start_service_thread(testbed_tool, _pool_config(2)) as handle:
        backend = handle.service.backend
        subs = {
            name: _Subscriber(handle.port, name)
            for name in (victim_dep, survivor_dep)
        }
        packets = list(iter_packets(testbed_frame))
        step = 64
        starts = list(range(0, len(packets), step))
        kill_at = len(starts) // 3
        sent_after_kill = 0
        with ServiceClient(port=handle.port) as client:
            for i, start in enumerate(starts):
                batch = packets[start:start + step]
                if i == kill_at:
                    backend.kill_worker("w0")  # SIGKILL mid-stream
                client.submit(victim_dep, batch)
                client.submit(survivor_dep, batch)
                if i >= kill_at:
                    sent_after_kill += len(batch)

        # Wait for the front door to notice the death and re-route.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            health = http_get_json(handle.host, handle.http_port, "/health")
            alive = {w["id"]: w["alive"] for w in health["workers"]}
            if not alive["w0"]:
                break
            time.sleep(0.05)
        assert alive == {"w0": False, "w1": True}

        text = _prometheus_text(handle)
        assert validate_exposition(text) > 0
        assert "repro_service_worker_handoffs_total" in text

        doc = http_get_json(handle.host, handle.http_port, "/metrics")
        shard = doc["deployments"][victim_dep]
        assert shard["worker"] == "w1"  # adopted by the survivor
        assert shard["queue_depth_packets"] == 0  # every batch got acked
        # At-least-once: the survivor's fresh session diagnosed at least
        # every batch from the kill onward (unacked replays + new sends).
        assert shard["packets"] >= sent_after_kill

        handle.stop(drain=True)
    for sub in subs.values():
        sub.join(timeout=10.0)

    # The deployment on the surviving worker never noticed: bit-identical.
    assert subs[survivor_dep].events == reference
    # No cross-deployment bleed, even through the handoff replay.
    for name, sub in subs.items():
        assert sub.messages, f"{name} subscriber saw no events"
        assert all(m["deployment"] == name for m in sub.messages)


def test_fanout_loadgen_spreads_over_both_workers(testbed_tool,
                                                  testbed_frame):
    placed = _deployments_per_worker(2, 2)
    names = placed["w0"] + placed["w1"]
    reference = _reference_events(testbed_tool, testbed_frame)

    with start_service_thread(testbed_tool, _pool_config(2)) as handle:
        subs = {name: _Subscriber(handle.port, name) for name in names}
        report = replay_trace_fanout(
            ServiceClient(port=handle.port), names, testbed_frame,
            batch_size=128,
        )
        assert report.errors == []
        assert report.packets_sent == len(testbed_frame) * len(names)
        assert len(report.per_deployment) == len(names)

        doc = http_get_json(handle.host, handle.http_port, "/metrics")
        workers_used = {
            doc["deployments"][name]["worker"] for name in names
        }
        assert workers_used == {"w0", "w1"}
        handle.stop(drain=True)
    for sub in subs.values():
        sub.join(timeout=10.0)

    # Same trace into four deployments on two processes: four identical,
    # bit-exact copies of the reference stream.
    for name in names:
        assert subs[name].events == reference
