"""Tests for the root-cause interpretation engine."""

import numpy as np
import pytest

from repro.core.interpretation import RootCauseInterpreter
from repro.metrics.catalog import METRIC_INDEX, NUM_METRICS


@pytest.fixture
def interpreter():
    return RootCauseInterpreter()


def row_with(values: dict) -> np.ndarray:
    row = np.zeros(NUM_METRICS)
    for name, value in values.items():
        row[METRIC_INDEX[name]] = value
    return row


def test_loop_signature_scores_routing_loop(interpreter):
    row = row_with({
        "loop_counter": 0.9,
        "transmit_counter": 0.8,
        "self_transmit_counter": 0.7,
        "duplicate_counter": 0.85,
        "overflow_drop_counter": 0.5,
    })
    hazards = interpreter.hazard_scores(row)
    assert hazards[0][0] == "routing_loop"


def test_contention_signature(interpreter):
    row = row_with({
        "mac_backoff_counter": 0.95,
        "noack_retransmit_counter": 0.8,
    })
    hazards = dict(interpreter.hazard_scores(row))
    assert "contention" in hazards
    top = interpreter.hazard_scores(row)[0][0]
    assert top in ("contention", "noack_retransmit")


def test_direction_matters(interpreter):
    # counters *falling* is not a loop
    row = row_with({
        "loop_counter": -0.9,
        "transmit_counter": -0.8,
        "duplicate_counter": -0.85,
    })
    hazards = dict(interpreter.hazard_scores(row))
    assert hazards.get("routing_loop", 0.0) == 0.0


def test_counter_reset_flags_reboot(interpreter):
    values = {"voltage": 0.3}
    for name in (
        "parent_change_counter", "no_parent_counter", "transmit_counter",
        "self_transmit_counter", "receive_counter", "overflow_drop_counter",
        "noack_retransmit_counter", "drop_packet_counter",
        "duplicate_counter", "loop_counter", "mac_backoff_counter",
        "radio_on_time", "beacon_counter", "ack_counter",
        "retransmit_counter",
    ):
        values[name] = -0.9
    row = row_with(values)
    assert interpreter.counter_reset_score(row) > 0.5
    assert interpreter.hazard_scores(row)[0][0] == "node_reboot"


def test_dark_row_not_reset(interpreter):
    # everything mildly negative (including gauges): not a reboot
    row = -0.6 * np.ones(NUM_METRICS)
    assert interpreter.counter_reset_score(row) == 0.0


def test_family_classification(interpreter):
    assert interpreter.family_of(row_with({"temperature": 1.0})) == "environment"
    assert interpreter.family_of(row_with({"rssi_3": 1.0})) == "link"
    assert interpreter.family_of(row_with({"loop_counter": 1.0})) == "protocol"


def test_dominant_metrics_ordering(interpreter):
    row = row_with({"voltage": -0.9, "temperature": 0.5, "light": 0.1})
    dominant = interpreter.dominant_metrics(row)
    assert dominant[0] == ("voltage", pytest.approx(-0.9))
    names = [n for n, _v in dominant]
    assert "light" not in names  # below the dominance fraction


def test_dominant_metrics_empty_row(interpreter):
    assert interpreter.dominant_metrics(np.zeros(NUM_METRICS)) == []


def test_interpret_labels_every_row(interpreter):
    psi = np.vstack([
        row_with({"loop_counter": 0.9, "duplicate_counter": 0.9,
                  "transmit_counter": 0.8}),
        row_with({"mac_backoff_counter": 0.9,
                  "noack_retransmit_counter": 0.7}),
    ])
    labels = interpreter.interpret(psi)
    assert len(labels) == 2
    assert labels[0].index == 0
    assert labels[0].primary_hazard == "routing_loop"
    assert not labels[0].is_baseline  # no usage given -> no baseline flags


def test_usage_marks_baseline(interpreter):
    psi = np.vstack([row_with({"temperature": 0.5})] * 4)
    usage = np.array([10.0, 1.0, 1.0, 1.0])
    labels = interpreter.interpret(psi, usage=usage)
    assert labels[0].is_baseline
    assert not labels[1].is_baseline
    assert "baseline" in labels[0].explanation.lower() or "normal" in labels[0].explanation.lower()


def test_explanation_text_from_table1(interpreter):
    row = row_with({"loop_counter": 0.9, "duplicate_counter": 0.9,
                    "transmit_counter": 0.9, "self_transmit_counter": 0.9,
                    "overflow_drop_counter": 0.6})
    label = interpreter.label_row(0, row, energy=1.0, is_baseline=False)
    assert "loop" in label.explanation.lower()
