"""Tests for warm-start incremental model updates and latency analysis."""

import numpy as np
import pytest

from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states
from repro.traces.prr import latency_series


@pytest.fixture(scope="module")
def split_trace(testbed_trace):
    warmup = float(testbed_trace.metadata["warmup_s"])
    duration = float(testbed_trace.metadata["duration_s"])
    half = warmup + duration / 2.0
    return testbed_trace.window(0.0, half), testbed_trace.window(
        half, warmup + duration
    )


def test_refit_keeps_rank_and_stays_fitted(split_trace):
    first, second = split_trace
    tool = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)
    psi_before = tool.psi.copy()
    tool.refit_with(build_states(second))
    assert tool.rank_ == 8
    assert tool.psi.shape == psi_before.shape
    assert np.all(tool.psi >= 0)
    assert len(tool.labels) == 8


def test_refit_absorbs_new_states(split_trace):
    first, second = split_trace
    tool = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)
    n_before = len(tool.states_)
    tool.refit_with(build_states(second))
    assert len(tool.states_) > n_before


def test_refit_keeps_root_causes_stable(split_trace):
    """Warm starting from Ψ keeps row identities roughly aligned."""
    first, second = split_trace
    tool = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)
    psi_before = tool.psi.copy()
    tool.refit_with(build_states(second))
    # each old row should still have a close counterpart at the same index
    def unit(M):
        return M / np.maximum(np.linalg.norm(M, axis=1, keepdims=True), 1e-12)

    diagonal = np.sum(unit(psi_before) * unit(tool.psi), axis=1)
    assert float(np.median(diagonal)) > 0.9


def test_refit_reconstructs_combined_data(split_trace):
    first, second = split_trace
    warm = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)
    warm.refit_with(build_states(second), warm_iterations=80)

    cold = VN2(VN2Config(rank=8, filter_exceptions=False))
    cold.fit_states(warm.states_)  # full retrain on the same combined set

    # warm refit reaches within 25 % of a full retrain's loss
    assert warm.nmf_.loss <= cold.nmf_.loss * 1.25


def test_refit_one_batch_vs_two_same_rankings(split_trace):
    """Online determinism: absorbing the same states as one batch or as
    two incremental batches lands on the same root-cause *rankings* at a
    matched total iteration budget.

    The factor values differ slightly (the intermediate re-seed changes
    the optimization path), but what operators consume — the energy
    ordering of the root causes and each state's dominant cause — must
    not depend on how the stream happened to be chunked.
    """
    import numpy as np

    first, second = split_trace
    states = build_states(second)
    mid = len(states) // 2

    one = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)
    one.refit_with(states, warm_iterations=60)

    two = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)
    two.refit_with(states._take(np.arange(mid)), warm_iterations=30)
    two.refit_with(
        states._take(np.arange(mid, len(states))), warm_iterations=30
    )

    assert len(two.states_) == len(one.states_)
    # identical ranking of root causes by captured energy
    ranking_one = np.argsort(-one._row_energies(), kind="stable")
    ranking_two = np.argsort(-two._row_energies(), kind="stable")
    assert np.array_equal(ranking_one, ranking_two)
    # and per-state: the dominant root cause agrees on (almost) every
    # newly absorbed state
    w_one = np.stack([r.weights for r in one.diagnose_batch(states)])
    w_two = np.stack([r.weights for r in two.diagnose_batch(states)])
    agree = np.mean(np.argmax(w_one, axis=1) == np.argmax(w_two, axis=1))
    assert agree >= 0.95


def test_refit_requires_fitted():
    tool = VN2()
    with pytest.raises(RuntimeError):
        tool.refit_with(None)


def test_refit_diagnoses_new_faults(split_trace):
    first, second = split_trace
    tool = VN2(VN2Config(rank=8, filter_exceptions=False)).fit(first)
    tool.refit_with(build_states(second))
    states = build_states(second)
    report = tool.diagnose(states.values[10])
    assert report.weights.shape == (8,)


# ----------------------------------------------------------------------
# latency
# ----------------------------------------------------------------------


def test_latency_series_on_testbed(testbed_trace):
    centers, medians = latency_series(testbed_trace, bin_seconds=600.0)
    assert len(centers) > 5
    finite = medians[np.isfinite(medians)]
    assert len(finite) > 3
    # multihop collection completes within a couple of minutes typically
    assert np.nanmedian(medians) < 200.0
    assert np.nanmin(medians) >= 0.0


def test_latency_series_empty():
    from repro.traces.records import Trace

    centers, medians = latency_series(Trace(rows=[]))
    assert len(centers) == 0
