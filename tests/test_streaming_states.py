"""StreamingStateBuilder: per-packet, chunked and batch paths agree.

The engine's foundational contract: ``push`` (packet at a time),
``push_frame`` (chunk at a time) and ``build_states`` (whole frame) emit
the same states with bit-identical values, and the per-node cache gives
the builder bounded memory regardless of stream length.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.states import (
    StreamingStateBuilder,
    build_states,
    build_states_python,
    stack_states,
)
from repro.metrics.catalog import NUM_METRICS
from repro.traces.frame import TraceFrame, as_frame


def _make_frame(rows):
    """rows: (node_id, epoch, generated_at, values)."""
    if rows:
        values = np.vstack([r[3] for r in rows])
    else:
        values = np.zeros((0, NUM_METRICS))
    return TraceFrame(
        node_ids=np.array([r[0] for r in rows], dtype=np.int64),
        epochs=np.array([r[1] for r in rows], dtype=np.int64),
        generated_at=np.array([r[2] for r in rows], dtype=float),
        received_at=np.array([r[2] + 1.0 for r in rows], dtype=float),
        values=values,
    )


def _random_rows(rng, n_nodes=5, n_epochs=12, drop=0.2):
    rows = []
    for node in range(1, n_nodes + 1):
        for epoch in range(n_epochs):
            if rng.random() < drop:
                continue
            rows.append(
                (node, epoch, epoch * 600.0 + node, rng.normal(size=NUM_METRICS))
            )
    return rows


def _assert_states_equal(a, b):
    assert np.array_equal(a.values, b.values)
    assert np.array_equal(a.node_ids, b.node_ids)
    assert np.array_equal(a.epochs_from, b.epochs_from)
    assert np.array_equal(a.epochs_to, b.epochs_to)
    assert np.array_equal(a.times_from, b.times_from)
    assert np.array_equal(a.times_to, b.times_to)


@pytest.mark.parametrize("kwargs", [{}, {"max_epoch_gap": 2}, {"per_epoch_rate": True}])
def test_push_matches_push_frame_and_batch(kwargs):
    rng = np.random.default_rng(3)
    frame = _make_frame(_random_rows(rng))

    per_packet = StreamingStateBuilder(**kwargs)
    streamed = []
    for i in range(len(frame)):
        state = per_packet.push(
            frame.node_ids[i], frame.epochs[i], frame.generated_at[i], frame.values[i]
        )
        if state is not None:
            streamed.append(state)
    batch = build_states(frame, **kwargs)
    _assert_states_equal(stack_states(streamed), batch)


@pytest.mark.parametrize("chunk_rows", [1, 3, 7, 1000])
def test_chunked_push_frame_matches_batch(chunk_rows):
    rng = np.random.default_rng(11)
    frame = _make_frame(_random_rows(rng))
    builder = StreamingStateBuilder()
    chunks = []
    for start in range(0, len(frame), chunk_rows):
        sub = TraceFrame(
            node_ids=frame.node_ids[start : start + chunk_rows],
            epochs=frame.epochs[start : start + chunk_rows],
            generated_at=frame.generated_at[start : start + chunk_rows],
            received_at=frame.received_at[start : start + chunk_rows],
            values=frame.values[start : start + chunk_rows],
        )
        chunks.append(builder.push_frame(sub))
    combined = stack_states(
        [s for chunk in chunks for s in _streamed(chunk)]
    )
    _assert_states_equal(combined, build_states(frame))


def _streamed(states):
    """StateMatrix rows as StreamedState-likes (for stack_states reuse)."""
    from repro.core.states import StreamedState

    return [
        StreamedState(
            values=states.values[i],
            node_id=int(states.node_ids[i]),
            epoch_from=int(states.epochs_from[i]),
            epoch_to=int(states.epochs_to[i]),
            time_from=float(states.times_from[i]),
            time_to=float(states.times_to[i]),
        )
        for i in range(len(states))
    ]


def test_matches_reference_loop_on_trace(testbed_trace):
    frame = as_frame(testbed_trace)
    batch = build_states(frame)
    reference = build_states_python(testbed_trace)
    _assert_states_equal(batch, reference)


def test_duplicate_epoch_refreshes_baseline_without_emitting():
    builder = StreamingStateBuilder()
    v1, v2, v3 = (np.full(NUM_METRICS, float(k)) for k in (1, 2, 5))
    assert builder.push(1, 0, 0.0, v1) is None
    # Same epoch again: no state, but the cache now holds v2.
    assert builder.push(1, 0, 10.0, v2) is None
    state = builder.push(1, 1, 600.0, v3)
    assert state is not None
    assert np.array_equal(state.values, v3 - v2)
    assert state.time_from == 10.0


def test_out_of_order_epoch_is_dropped_but_updates_cache():
    builder = StreamingStateBuilder()
    v = lambda k: np.full(NUM_METRICS, float(k))  # noqa: E731
    builder.push(1, 5, 3000.0, v(5))
    # A late epoch-3 packet cannot complete a forward pair...
    assert builder.push(1, 3, 3100.0, v(3)) is None
    # ...but it becomes the new baseline (batch semantics on sorted input).
    state = builder.push(1, 4, 3200.0, v(9))
    assert state is not None
    assert state.epoch_from == 3
    assert np.array_equal(state.values, v(9) - v(3))


def test_reboot_counter_reset_passes_through_signed():
    builder = StreamingStateBuilder()
    before = np.full(NUM_METRICS, 1e4)
    after = np.full(NUM_METRICS, 10.0)  # counters reset at reboot
    builder.push(1, 0, 0.0, before)
    state = builder.push(1, 1, 600.0, after)
    assert np.all(state.values < 0)  # large negative jump, not special-cased
    assert np.array_equal(state.values, after - before)


def test_max_epoch_gap_suppresses_distant_pairs():
    builder = StreamingStateBuilder(max_epoch_gap=2)
    v = lambda k: np.full(NUM_METRICS, float(k))  # noqa: E731
    builder.push(1, 0, 0.0, v(0))
    assert builder.push(1, 5, 3000.0, v(5)) is None  # gap 5 > 2
    assert builder.push(1, 6, 3600.0, v(6)) is not None  # gap 1


def test_cache_is_bounded_by_node_population():
    builder = StreamingStateBuilder()
    rng = np.random.default_rng(0)
    for epoch in range(200):
        for node in range(10):
            builder.push(node, epoch, epoch * 600.0, rng.normal(size=NUM_METRICS))
    assert len(builder) == 10  # one cached report per node, not per packet
    assert builder.n_packets == 2000
    assert builder.n_states == 10 * 199


def test_empty_frame_yields_empty_matrix():
    frame = _make_frame([])
    states = StreamingStateBuilder().push_frame(frame)
    assert len(states) == 0
    assert states.values.shape == (0, NUM_METRICS)
