"""Wire-protocol validation: every malformed message is rejected with a
machine-readable code, every well-formed one round-trips exactly.

No sockets here — the protocol module is pure functions, so these tests
pin the message grammar the server and SDK both rely on.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.metrics.catalog import NUM_METRICS
from repro.service import protocol


def _packet(**overrides):
    obj = {
        "node_id": 7,
        "epoch": 3,
        "generated_at": 1200.5,
        "values": [0.5] * NUM_METRICS,
    }
    obj.update(overrides)
    return obj


def _ingest(**overrides):
    msg = protocol.ingest("city-a", [_packet()], seq=1)
    msg.update(overrides)
    return msg


def test_encode_decode_roundtrip():
    msg = _ingest()
    assert protocol.decode(protocol.encode(msg)) == msg


def test_encode_is_single_line():
    assert protocol.encode(_ingest()).count(b"\n") == 1


def test_decode_rejects_non_json_and_non_object():
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.decode(b"not json\n")
    assert exc.value.code == "bad_json"
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.decode(b"[1, 2]\n")
    assert exc.value.code == "bad_json"


def test_version_mismatch_rejected():
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_ingest(_ingest(v=2))
    assert exc.value.code == "bad_version"
    assert exc.value.seq == 1  # seq still echoed so the client can match


def test_missing_type_rejected():
    msg = _ingest()
    del msg["type"]
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol._check_envelope(msg)
    assert exc.value.code == "bad_type"


@pytest.mark.parametrize("name", [
    "", "a" * 65, "has space", "/slash", None, 42, "-leading-dash",
])
def test_bad_deployment_names_rejected(name):
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.check_deployment(name)
    assert exc.value.code == "bad_deployment"


@pytest.mark.parametrize("name", ["a", "city-a", "CitySee_2011", "x.y-z", "9lives"])
def test_good_deployment_names_accepted(name):
    assert protocol.check_deployment(name) == name


def test_parse_packet_returns_session_tuple():
    node_id, epoch, generated_at, values = protocol.parse_packet(_packet())
    assert (node_id, epoch, generated_at) == (7, 3, 1200.5)
    assert values.shape == (NUM_METRICS,)
    assert values.dtype == float


@pytest.mark.parametrize("mutation, field", [
    ({"node_id": -1}, "node_id"),
    ({"node_id": "7"}, "node_id"),
    ({"node_id": True}, "node_id"),
    ({"epoch": -2}, "epoch"),
    ({"epoch": 1.5}, "epoch"),
    ({"generated_at": float("nan")}, "generated_at"),
    ({"generated_at": "soon"}, "generated_at"),
    ({"values": [0.5] * (NUM_METRICS - 1)}, "values"),
    ({"values": [0.5] * (NUM_METRICS + 1)}, "values"),
    ({"values": "zeros"}, "values"),
])
def test_malformed_packet_fields_rejected(mutation, field):
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_packet(_packet(**mutation))
    assert exc.value.code == "bad_packet"
    assert field in str(exc.value)


def test_non_finite_values_rejected():
    values = [0.5] * NUM_METRICS
    values[10] = math.inf
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_packet(_packet(values=values))
    assert exc.value.code == "bad_packet"


def test_missing_packet_field_rejected():
    obj = _packet()
    del obj["values"]
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_packet(obj)
    assert exc.value.code == "bad_packet"


def test_parse_ingest_happy_path():
    seq, deployment, packets = protocol.parse_ingest(
        protocol.ingest("city-a", [_packet(), _packet(epoch=4)], seq=9)
    )
    assert seq == 9
    assert deployment == "city-a"
    assert [p[1] for p in packets] == [3, 4]


@pytest.mark.parametrize("packets", [[], None, "x"])
def test_parse_ingest_requires_nonempty_list(packets):
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_ingest(_ingest(packets=packets))
    assert exc.value.code == "bad_request"


def test_parse_ingest_caps_batch_size():
    msg = _ingest(packets=[_packet()] * (protocol.MAX_BATCH + 1))
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_ingest(msg)
    assert exc.value.code == "bad_request"


def test_ack_shapes():
    plain = protocol.ack(5, accepted=32, queued=100)
    assert plain["type"] == "ack" and "retry_after" not in plain
    pushed = protocol.ack(5, accepted=0, queued=8192, retry_after=0.05)
    assert pushed["retry_after"] == 0.05
    assert pushed["reason"] == "queue_full"


def test_error_codes_are_closed_set():
    for code in protocol.ERROR_CODES:
        assert protocol.error(code, "msg")["code"] == code
    with pytest.raises(AssertionError):
        protocol.error("made_up", "msg")


def test_hello_advertises_catalog_width():
    msg = protocol.hello()
    assert msg["n_metrics"] == NUM_METRICS
    assert msg["v"] == protocol.PROTOCOL_VERSION


def test_incident_event_obj_matches_watch_log_shape():
    """The service event payload and `vn2 watch --output` lines must stay
    the same object — the CI differential depends on it."""
    from repro.cli import _event_json
    from repro.core.incidents import IncidentEvent, IncidentTracker, Observation

    tracker = IncidentTracker()
    (event,) = tracker.add(Observation(
        node_id=3, time_from=0.0, time_to=600.0, cause_index=1,
        hazard="congestion", strength=0.4,
    ))
    assert isinstance(event, IncidentEvent)
    assert json.loads(_event_json(event)) == protocol.incident_event_obj(event)
    assert set(protocol.incident_event_obj(event)) == {
        "kind", "incident_id", "time", "hazard", "node_ids", "start", "end",
        "peak_strength", "total_strength", "n_observations",
    }


def test_event_message_wraps_deployment():
    from repro.core.incidents import IncidentTracker, Observation

    tracker = IncidentTracker()
    (event,) = tracker.add(Observation(
        node_id=3, time_from=0.0, time_to=600.0, cause_index=1,
        hazard="congestion", strength=0.4,
    ))
    msg = protocol.event_message("city-a", event)
    assert msg["deployment"] == "city-a"
    assert msg["event"]["kind"] == "open"
    # Full float precision on the wire: values survive a JSON round trip.
    assert protocol.decode(protocol.encode(msg)) == msg


def test_values_accept_numpy_row_via_tolist():
    row = np.linspace(0.0, 1.0, NUM_METRICS)
    packet = _packet(values=row.tolist())
    _, _, _, parsed = protocol.parse_packet(packet)
    assert np.array_equal(parsed, row)
