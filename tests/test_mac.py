"""Unit tests for the CSMA MAC model."""

import numpy as np
import pytest

from repro.simnet.mac import ChannelActivity, CsmaMac, MacParams


@pytest.fixture
def mac():
    return CsmaMac(MacParams(), np.random.default_rng(0))


def test_idle_channel_usually_clear(mac):
    attempts = [mac.attempt(0.0, 0.0) for _ in range(200)]
    acquired = sum(a.acquired for a in attempts)
    assert acquired >= 190
    mean_backoffs = np.mean([a.backoffs for a in attempts])
    assert mean_backoffs < 0.2


def test_busy_probability_increases_with_activity(mac):
    quiet = mac.busy_probability(0.0, 0.0)
    busy = mac.busy_probability(3.0, 0.0)
    assert busy > quiet + 0.5


def test_noise_rise_makes_channel_busy(mac):
    quiet = mac.busy_probability(0.0, 0.0)
    jammed = mac.busy_probability(0.0, 20.0)
    assert jammed > quiet + 0.5


def test_noise_below_threshold_ignored(mac):
    assert mac.busy_probability(0.0, 2.0) == pytest.approx(
        mac.busy_probability(0.0, 0.0)
    )


def test_busy_probability_capped(mac):
    assert mac.busy_probability(100.0, 100.0) <= 0.995


def test_backoffs_counted_and_bounded(mac):
    heavy = [mac.attempt(5.0, 0.0) for _ in range(200)]
    assert any(a.backoffs > 0 for a in heavy)
    assert all(a.backoffs <= MacParams().max_backoffs for a in heavy)
    failures = [a for a in heavy if not a.acquired]
    assert all(a.backoffs == MacParams().max_backoffs for a in failures)


def test_delay_grows_with_backoffs(mac):
    attempts = [mac.attempt(4.0, 0.0) for _ in range(300)]
    with_backoff = [a for a in attempts if a.backoffs >= 3]
    without = [a for a in attempts if a.backoffs == 0]
    assert with_backoff and without
    assert np.mean([a.delay_s for a in with_backoff]) > np.mean(
        [a.delay_s for a in without]
    )


def test_activity_decays_exponentially():
    activity = ChannelActivity(decay_s=2.0)
    activity.bump(0.0, 1.0)
    assert activity.level(0.0) == pytest.approx(1.0)
    assert activity.level(2.0) == pytest.approx(np.exp(-1.0), rel=1e-6)
    assert activity.level(20.0) < 1e-4


def test_activity_accumulates():
    activity = ChannelActivity(decay_s=10.0)
    for t in (0.0, 0.1, 0.2):
        activity.bump(t, 0.5)
    assert activity.level(0.2) > 1.4
