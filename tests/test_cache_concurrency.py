"""Concurrent writers of one trace-cache entry must never tear it.

Two processes asked for the same uncached profile both simulate (the
cache has no locking — by design, the runs are deterministic so the work
is merely redundant) and both write the same entry through the atomic
temp-file + ``os.replace`` path in :mod:`repro.traces.io`.  Whoever
renames last wins, the loser's bytes are identical, and a reader can
never observe a half-written NPZ/JSONL.  These tests race two real
processes on a cold cache directory and then check the survivor parses
and matches a serial reference bit-for-bit.
"""

from __future__ import annotations

import multiprocessing

import numpy as np

from repro.traces.citysee import (
    CitySeeProfile,
    citysee_cache_paths,
    generate_citysee_frame,
)
from repro.traces.io import load_frame_npz
from repro.traces.testbed import TestbedScenario, generate_testbed_frame
from repro.traces.testbed import testbed_cache_paths as tb_cache_paths


def _profile() -> CitySeeProfile:
    return CitySeeProfile.tiny(seed=424242, days=0.5)


def _generate_citysee(cache_dir, barrier, results) -> None:
    """Child body: populate the cache; reports the frame length back."""
    barrier.wait(timeout=120)
    frame = generate_citysee_frame(
        _profile(), use_cache=True, cache_dir=cache_dir
    )
    results.put(len(frame))


def _generate_testbed(cache_dir, barrier, results) -> None:
    barrier.wait(timeout=120)
    frame = generate_testbed_frame(
        TestbedScenario.LOCAL, seed=99, duration_s=1800.0, warmup_s=300.0,
        report_period_s=120.0, use_cache=True, cache_dir=cache_dir,
    )
    results.put(len(frame))


def _race_two_processes(target, cache_dir):
    """Run two children released by a shared barrier so the work overlaps.

    Synchronization objects travel as ``Process`` constructor args (legal
    under every start method), not through a pickled task queue.
    """
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(2)
    results = ctx.Queue()
    children = [
        ctx.Process(target=target, args=(cache_dir, barrier, results))
        for _ in range(2)
    ]
    for child in children:
        child.start()
    lengths = [results.get(timeout=300) for _ in children]
    for child in children:
        child.join(timeout=60)
        assert child.exitcode == 0
    return lengths


def _assert_clean_cache_dir(cache_dir):
    """No temp-file litter: every entry was renamed or unlinked."""
    leftovers = [p for p in cache_dir.iterdir() if p.suffix == ".tmp"]
    assert leftovers == [], f"torn/abandoned temp files: {leftovers}"


def test_citysee_cache_race_leaves_one_valid_entry(tmp_path):
    profile = _profile()
    npz_path, jsonl_path = citysee_cache_paths(profile, cache_dir=tmp_path)
    assert not npz_path.exists()

    lengths = _race_two_processes(_generate_citysee, tmp_path)
    assert lengths[0] == lengths[1] > 0

    # Exactly the two expected cache files, both complete.
    assert sorted(p.name for p in tmp_path.iterdir()) == sorted(
        [npz_path.name, jsonl_path.name]
    )
    _assert_clean_cache_dir(tmp_path)

    cached = load_frame_npz(npz_path)
    reference = generate_citysee_frame(profile, use_cache=False)
    assert np.array_equal(cached.values, reference.values)
    assert np.array_equal(cached.node_ids, reference.node_ids)
    assert np.array_equal(cached.arrival_times, reference.arrival_times)

    # A third request is now a pure cache hit returning the same frame.
    again = generate_citysee_frame(profile, use_cache=True, cache_dir=tmp_path)
    assert np.array_equal(again.values, reference.values)


def test_testbed_cache_race_leaves_one_valid_entry(tmp_path):
    npz_path = tb_cache_paths(
        TestbedScenario.LOCAL, seed=99, duration_s=1800.0, warmup_s=300.0,
        report_period_s=120.0, cache_dir=tmp_path,
    )
    lengths = _race_two_processes(_generate_testbed, tmp_path)
    assert lengths[0] == lengths[1] > 0

    assert [p.name for p in tmp_path.iterdir()] == [npz_path.name]
    _assert_clean_cache_dir(tmp_path)

    cached = load_frame_npz(npz_path)
    reference = generate_testbed_frame(
        TestbedScenario.LOCAL, seed=99, duration_s=1800.0, warmup_s=300.0,
        report_period_s=120.0, use_cache=False,
    )
    assert np.array_equal(cached.values, reference.values)
    assert np.array_equal(cached.received_at, reference.received_at)
