"""Edge cases of the diagnosis path."""

import numpy as np
import pytest

from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states
from repro.metrics.catalog import NUM_METRICS


def test_zero_state_diagnoses_quietly(testbed_tool):
    """A zero delta (nothing changed at all) is reconstructed weakly and
    never crashes; the residual accounting stays consistent."""
    report = testbed_tool.diagnose(np.zeros(NUM_METRICS))
    assert np.all(report.weights >= 0)
    assert report.residual >= 0
    assert 0.0 <= report.relative_residual <= 1.5
    assert isinstance(report.summary(), str)


def test_extreme_state_is_clipped_not_explosive(testbed_tool):
    state = np.full(NUM_METRICS, 1e9)
    report = testbed_tool.diagnose(state)
    assert np.all(np.isfinite(report.weights))
    assert np.isfinite(report.residual)


def test_exception_score_monotone_in_deviation(testbed_tool, testbed_trace):
    states = build_states(testbed_trace)
    base = states.values.mean(axis=0)
    small = testbed_tool.exception_score(base)
    large = testbed_tool.exception_score(base + 50 * states.values.std(axis=0))
    assert large > small


def test_exception_score_survives_save_load(tmp_path, testbed_tool):
    path = tmp_path / "model"
    testbed_tool.save(path)
    loaded = VN2.load(path)
    state = np.zeros(NUM_METRICS)
    assert loaded.exception_score(state) == testbed_tool.exception_score(state)


def test_exception_score_requires_training_stats(tmp_path, testbed_tool):
    # A legacy save (before training statistics were persisted) still
    # loads, but cannot screen states.  Legacy sidecars also predate
    # model_version, so none is recorded — otherwise the integrity
    # check would (rightly) reject the altered payload.
    import json

    path = tmp_path / "model"
    testbed_tool.save(path)
    with np.load(path.with_suffix(".npz")) as arrays:
        stripped = {
            k: arrays[k] for k in arrays.files if not k.startswith("train_")
        }
    np.savez_compressed(path.with_suffix(".npz"), **stripped)
    sidecar = json.loads(path.with_suffix(".json").read_text())
    sidecar.pop("model_version", None)
    path.with_suffix(".json").write_text(json.dumps(sidecar))
    loaded = VN2.load(path)
    with pytest.raises(RuntimeError):
        loaded.exception_score(np.zeros(NUM_METRICS))


def test_is_exception_uses_config_threshold(testbed_tool, testbed_trace):
    states = build_states(testbed_trace)
    # the most deviant training state is always an exception
    scores = [
        testbed_tool.exception_score(states.values[i])
        for i in range(0, len(states), 25)
    ]
    top = int(np.argmax(scores)) * 25
    assert testbed_tool.is_exception(states.values[top])


def test_diagnose_exceptions_screens_states(testbed_tool, testbed_trace):
    states = build_states(testbed_trace)
    sample = states.select(range(0, len(states), 4))
    results = testbed_tool.diagnose_exceptions(sample, threshold_ratio=0.02)
    # only a minority of states are exceptional
    assert 0 < len(results) < len(sample)
    for provenance, report in results:
        assert testbed_tool.is_exception(
            sample.values[[p is provenance for p in sample.provenance].index(True)],
            0.02,
        )
        assert report.weights.shape == (testbed_tool.rank_,)


def test_diagnose_report_ranked_sorted_and_significant(testbed_tool, testbed_trace):
    states = build_states(testbed_trace)
    report = testbed_tool.diagnose(states.values[50])
    if report.ranked:
        strengths = [c.strength for c in report.ranked]
        assert strengths == sorted(strengths, reverse=True)
        floor = testbed_tool.config.min_weight_fraction * max(report.weights)
        assert all(c.strength >= floor - 1e-12 for c in report.ranked)
