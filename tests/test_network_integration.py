"""Integration tests: the assembled network behaves like a sensor network."""

import numpy as np
import pytest

from repro.metrics.catalog import METRIC_INDEX
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology


def test_collection_tree_forms_and_delivers(small_grid_network):
    net = small_grid_network
    assert net.delivery_ratio() > 0.9
    # every sensor eventually has a parent
    with_parent = [
        n for n in net.nodes.values() if not n.is_sink and n.routing.parent is not None
    ]
    assert len(with_parent) >= 22  # of 24 sensors


def test_tree_is_acyclic_and_rooted(small_grid_network):
    net = small_grid_network
    sink = net.topology.sink_id
    for node in net.nodes.values():
        if node.is_sink or node.routing.parent is None:
            continue
        seen = set()
        current = node.node_id
        while current != sink:
            assert current not in seen, "routing cycle detected"
            seen.add(current)
            parent = net.nodes[current].routing.parent
            assert parent is not None, "path does not reach the sink"
            current = parent


def test_multihop_paths_exist(small_grid_network):
    lengths = [
        n.routing.path_length()
        for n in small_grid_network.nodes.values()
        if not n.is_sink and n.routing.parent is not None
    ]
    assert max(lengths) >= 2


def test_snapshots_collected_per_node(small_grid_network):
    collector = small_grid_network.collector
    # 1800 s at 120 s period: most sensors completed >= 10 epochs
    complete = [len(t) for t in collector.timelines.values()]
    assert len(complete) >= 20
    assert np.median(complete) >= 10


def test_snapshot_vector_is_plausible(small_grid_network):
    net = small_grid_network
    node = net.nodes[12]
    vec = node.build_snapshot(net.sim.now())
    assert 2.5 < vec[METRIC_INDEX["voltage"]] < 3.2
    assert vec[METRIC_INDEX["neighbor_num"]] >= 1
    assert vec[METRIC_INDEX["transmit_counter"]] > 0
    assert vec[METRIC_INDEX["path_etx"]] >= 1.0


def test_determinism_same_seed():
    def run(seed):
        topo = grid_topology(rows=4, cols=4, spacing=9.0)
        net = Network(topo, NetworkConfig(
            report_period_s=120.0, seed=seed,
            radio=RadioParams(tx_power_dbm=-10.0), max_range_m=40.0,
        ))
        net.run(900.0)
        return (
            net.stats.data_tx_attempts,
            net.collector.packets_received,
            net.sim.events_processed,
        )

    assert run(11) == run(11)
    assert run(11) != run(12)


def test_counters_monotone_without_reboot(small_grid_network):
    net = small_grid_network
    for timeline in net.collector.timelines.values():
        matrix = timeline.matrix()
        if matrix.shape[0] < 2:
            continue
        tx = matrix[:, METRIC_INDEX["transmit_counter"]]
        assert (np.diff(tx) >= 0).all()


def test_beacons_and_acks_flow(small_grid_network):
    net = small_grid_network
    assert net.stats.beacons_sent > 100
    total_acks = sum(n.counters.ack_counter for n in net.nodes.values())
    assert total_acks > 0
