"""Property-style tests of the columnar trace backbone.

Exercises the Trace ⇄ TraceFrame round-trip (bit-exact metric matrices,
ordering invariant), the JSONL/NPZ codecs, the empty-trace and
single-node edge cases, the vectorized state builder against the legacy
Python loop, and the batch NNLS path against per-state inference.
"""

import numpy as np
import pytest

from repro.core.inference import infer_single, infer_weights_batch
from repro.core.pipeline import VN2, VN2Config
from repro.core.states import build_states, build_states_python
from repro.metrics.catalog import NUM_METRICS
from repro.traces.frame import TraceFrame, as_frame
from repro.traces.io import (
    load_frame,
    load_frame_jsonl,
    load_frame_npz,
    save_frame,
    save_frame_jsonl,
    save_frame_npz,
)
from repro.traces.records import GroundTruth, SnapshotRow, Trace


def random_frame(seed: int, n_nodes: int = 5, epochs_per_node: int = 8) -> TraceFrame:
    """A synthetic frame with irregular epochs, gaps and arrivals."""
    rng = np.random.default_rng(seed)
    node_ids, epochs, generated, received, values = [], [], [], [], []
    for node in range(1, n_nodes + 1):
        # Irregular epoch sets per node: dropped epochs, varying lengths.
        keep = rng.random(epochs_per_node) > 0.2
        for e in np.flatnonzero(keep):
            node_ids.append(node)
            epochs.append(int(e))
            t = 600.0 * e + rng.uniform(0.0, 30.0)
            generated.append(t)
            received.append(t + rng.uniform(0.1, 5.0))
            values.append(rng.normal(size=NUM_METRICS) * rng.uniform(0.5, 50.0))
    k = rng.integers(0, 20)
    arrival_times = np.sort(rng.uniform(0.0, 600.0 * epochs_per_node, size=k))
    arrival_nodes = rng.integers(1, n_nodes + 1, size=k)
    return TraceFrame(
        node_ids=np.array(node_ids),
        epochs=np.array(epochs),
        generated_at=np.array(generated),
        received_at=np.array(received),
        values=np.array(values),
        metadata={"report_period_s": 600.0, "seed": seed, "n_nodes": n_nodes + 1},
        ground_truth=[GroundTruth("routing_loop", (1, 2), 600.0, 1800.0)],
        packets_generated=3 * len(node_ids),
        packets_received=3 * len(node_ids) - int(k),
        arrival_times=arrival_times,
        arrival_nodes=arrival_nodes,
    )


def assert_frames_equal(a: TraceFrame, b: TraceFrame) -> None:
    assert np.array_equal(a.node_ids, b.node_ids)
    assert np.array_equal(a.epochs, b.epochs)
    assert np.array_equal(a.generated_at, b.generated_at)
    assert np.array_equal(a.received_at, b.received_at)
    assert np.array_equal(a.values, b.values)
    assert np.array_equal(a.arrival_times, b.arrival_times)
    assert np.array_equal(a.arrival_nodes, b.arrival_nodes)
    assert a.metadata == b.metadata
    assert a.ground_truth == b.ground_truth
    assert a.packets_generated == b.packets_generated
    assert a.packets_received == b.packets_received


# ----------------------------------------------------------------------
# Trace ⇄ TraceFrame round-trip
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_trace_frame_roundtrip_bit_exact(seed):
    frame = random_frame(seed)
    back = frame.to_trace().to_frame()
    assert_frames_equal(frame, back)


@pytest.mark.parametrize("seed", range(3))
def test_frame_trace_roundtrip_preserves_rows(seed):
    frame = random_frame(seed)
    trace = frame.to_trace()
    again = TraceFrame.from_trace(trace).to_trace()
    assert len(trace) == len(again)
    for r1, r2 in zip(trace.rows, again.rows):
        assert r1.node_id == r2.node_id
        assert r1.epoch == r2.epoch
        assert r1.generated_at == r2.generated_at
        assert r1.received_at == r2.received_at
        assert np.array_equal(r1.values, r2.values)
    assert trace.arrivals == again.arrivals


def test_constructor_restores_sort_invariant():
    frame = random_frame(11)
    rng = np.random.default_rng(0)
    order = rng.permutation(len(frame))
    shuffled = TraceFrame(
        node_ids=frame.node_ids[order],
        epochs=frame.epochs[order],
        generated_at=frame.generated_at[order],
        received_at=frame.received_at[order],
        values=frame.values[order],
        metadata=frame.metadata,
    )
    keys = list(zip(shuffled.node_ids.tolist(), shuffled.epochs.tolist()))
    assert keys == sorted(keys)
    assert np.array_equal(shuffled.values, frame.values)


def test_as_frame_passthrough_and_typeerror():
    frame = random_frame(1)
    assert as_frame(frame) is frame
    assert isinstance(as_frame(frame.to_trace()), TraceFrame)
    with pytest.raises(TypeError):
        as_frame([1, 2, 3])


def test_frame_rejects_mismatched_columns():
    with pytest.raises(ValueError):
        TraceFrame(
            node_ids=np.array([1, 2]),
            epochs=np.array([0]),
            generated_at=np.array([0.0]),
            received_at=np.array([0.0]),
            values=np.zeros((1, NUM_METRICS)),
        )
    with pytest.raises(ValueError):
        TraceFrame(
            node_ids=np.array([1]),
            epochs=np.array([0]),
            generated_at=np.array([0.0]),
            received_at=np.array([0.0]),
            values=np.zeros((1, NUM_METRICS - 1)),
        )


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(3))
def test_npz_roundtrip_bit_exact(tmp_path, seed):
    frame = random_frame(seed)
    path = tmp_path / "frame.npz"
    save_frame_npz(frame, path)
    assert_frames_equal(frame, load_frame_npz(path))


@pytest.mark.parametrize("seed", range(3))
def test_jsonl_reload_is_stable(tmp_path, seed):
    """JSONL rounds to 6 decimals once; re-saving the load is lossless."""
    frame = random_frame(seed)
    p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    save_frame_jsonl(frame, p1)
    loaded = load_frame_jsonl(p1)
    np.testing.assert_allclose(loaded.values, frame.values, atol=5e-7)
    assert np.array_equal(loaded.node_ids, frame.node_ids)
    assert np.array_equal(loaded.epochs, frame.epochs)
    save_frame_jsonl(loaded, p2)
    assert_frames_equal(loaded, load_frame_jsonl(p2))


def test_save_load_frame_dispatch(tmp_path):
    frame = random_frame(2)
    npz = tmp_path / "t.npz"
    jsonl = tmp_path / "t.jsonl"
    save_frame(frame, npz)
    save_frame(frame, jsonl)
    assert_frames_equal(load_frame(npz), frame)
    # Explicit fmt overrides the suffix.
    odd = tmp_path / "t.dat"
    save_frame(frame, odd, fmt="npz")
    assert_frames_equal(load_frame(odd, fmt="npz"), frame)
    with pytest.raises(ValueError):
        save_frame(frame, tmp_path / "x", fmt="parquet")
    with pytest.raises(ValueError):
        load_frame(jsonl, fmt="parquet")


# ----------------------------------------------------------------------
# edge cases
# ----------------------------------------------------------------------


def test_empty_trace_roundtrip(tmp_path):
    empty = Trace(rows=[])
    frame = empty.to_frame()
    assert len(frame) == 0
    assert frame.values.shape == (0, NUM_METRICS)
    assert len(frame.to_trace()) == 0
    assert frame.unique_node_ids == []
    assert list(frame.node_slices()) == []
    assert frame.time_span() == (0.0, 0.0)
    for fmt in ("jsonl", "npz"):
        path = tmp_path / f"empty.{fmt}"
        save_frame(frame, path, fmt=fmt)
        assert len(load_frame(path, fmt=fmt)) == 0
    assert len(build_states(frame)) == 0


def test_single_node_frame(tmp_path):
    n = 6
    values = np.arange(n * NUM_METRICS, dtype=float).reshape(n, NUM_METRICS)
    frame = TraceFrame(
        node_ids=np.full(n, 3),
        epochs=np.arange(n),
        generated_at=600.0 * np.arange(n),
        received_at=600.0 * np.arange(n) + 1.0,
        values=values,
        metadata={"report_period_s": 600.0},
    )
    assert frame.unique_node_ids == [3]
    assert frame.node_slice(3) == slice(0, n)
    assert frame.node_slice(4) == slice(n, n)
    path = tmp_path / "single.npz"
    save_frame(frame, path)
    assert_frames_equal(frame, load_frame(path))
    states = build_states(frame)
    assert len(states) == n - 1
    assert np.array_equal(states.node_ids, np.full(n - 1, 3))


# ----------------------------------------------------------------------
# vectorized states vs the legacy loop
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("max_epoch_gap", [None, 1, 3])
def test_build_states_matches_python_loop(seed, max_epoch_gap):
    frame = random_frame(seed, n_nodes=6, epochs_per_node=10)
    fast = build_states(frame, max_epoch_gap=max_epoch_gap)
    slow = build_states_python(frame.to_trace(), max_epoch_gap=max_epoch_gap)
    assert np.array_equal(fast.values, slow.values)
    assert np.array_equal(fast.node_ids, slow.node_ids)
    assert np.array_equal(fast.epochs_from, slow.epochs_from)
    assert np.array_equal(fast.epochs_to, slow.epochs_to)
    assert np.array_equal(fast.times_from, slow.times_from)
    assert np.array_equal(fast.times_to, slow.times_to)


def test_build_states_per_epoch_rate_matches(seed=3):
    frame = random_frame(seed, n_nodes=4, epochs_per_node=9)
    fast = build_states(frame, per_epoch_rate=True)
    slow = build_states_python(frame.to_trace(), per_epoch_rate=True)
    assert np.allclose(fast.values, slow.values)


# ----------------------------------------------------------------------
# batch inference vs per-state inference
# ----------------------------------------------------------------------


def test_infer_weights_batch_matches_infer_single():
    rng = np.random.default_rng(5)
    r, n = 12, 60
    Psi = np.abs(rng.normal(size=(r, NUM_METRICS)))
    W = np.abs(rng.normal(size=(n, r)))
    W[rng.random(size=W.shape) < 0.5] = 0.0
    states = W @ Psi + 0.01 * rng.normal(size=(n, NUM_METRICS))
    batch_w, batch_res = infer_weights_batch(Psi, states)
    for i in range(n):
        w, res = infer_single(Psi, states[i])
        np.testing.assert_allclose(batch_w[i], w, atol=1e-8)
        np.testing.assert_allclose(batch_res[i], res, atol=1e-8)


def test_diagnose_batch_matches_diagnose():
    frame = random_frame(7, n_nodes=8, epochs_per_node=12)
    # Make deltas non-negative-ish so NMF training is well posed.
    frame.values[:] = np.abs(frame.values)
    tool = VN2(VN2Config(rank=6, filter_exceptions=False)).fit(frame)
    states = build_states(frame)
    reports = tool.diagnose_batch(states)
    assert len(reports) == len(states)
    for i in (0, len(states) // 2, len(states) - 1):
        single = tool.diagnose(states.values[i])
        np.testing.assert_allclose(
            reports[i].weights, single.weights, atol=1e-8
        )
        np.testing.assert_allclose(
            reports[i].residual, single.residual, atol=1e-8
        )


# ----------------------------------------------------------------------
# VN2Config validation (construction-time errors)
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs, needle",
    [
        ({"rank_candidates": ()}, "rank_candidates"),
        ({"retention": 0.0}, "retention"),
        ({"retention": 1.5}, "retention"),
        ({"exception_threshold": 0.0}, "exception_threshold"),
        ({"exception_threshold": 1.0}, "exception_threshold"),
    ],
)
def test_vn2config_rejects_bad_values(kwargs, needle):
    with pytest.raises(ValueError, match=needle):
        VN2Config(**kwargs)


def test_vn2config_accepts_boundary_values():
    VN2Config(retention=1.0, exception_threshold=0.5)
