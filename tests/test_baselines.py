"""Tests for the Sympathy, Agnostic-Diagnosis and PCA baselines."""

import numpy as np
import pytest

from repro.baselines.agnostic import AgnosticDiagnoser, _correlation_matrix
from repro.baselines.pca import PCADetector
from repro.baselines.sympathy import SympathyDiagnoser
from repro.core.states import StateMatrix, StateProvenance
from repro.metrics.catalog import METRIC_INDEX, NUM_METRICS


def make_states(values, node_ids=None):
    values = np.asarray(values, dtype=float)
    node_ids = node_ids or [1] * values.shape[0]
    provenance = [
        StateProvenance(node_id=node_ids[i], epoch_from=i, epoch_to=i + 1,
                        time_from=float(i), time_to=float(i + 1))
        for i in range(values.shape[0])
    ]
    return StateMatrix(values=values, provenance=provenance)


def normal_states(n=60, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.normal(1.0, 0.2, size=(n, NUM_METRICS))
    return make_states(values)


# ---------------------------------------------------------------------
# Sympathy
# ---------------------------------------------------------------------


def test_sympathy_normal_state_passes():
    diagnoser = SympathyDiagnoser().fit(normal_states())
    verdict = diagnoser.diagnose(np.ones(NUM_METRICS))
    assert not verdict.is_abnormal
    assert verdict.cause is None


def test_sympathy_single_cause_per_state():
    diagnoser = SympathyDiagnoser().fit(normal_states())
    state = np.ones(NUM_METRICS)
    # BOTH a loop and contention are present...
    state[METRIC_INDEX["loop_counter"]] = 500.0
    state[METRIC_INDEX["mac_backoff_counter"]] = 5000.0
    verdict = diagnoser.diagnose(state)
    # ...but the tree reports only the first match (the paper's criticism)
    assert verdict.cause == "routing_loop"


def test_sympathy_tree_order():
    diagnoser = SympathyDiagnoser().fit(normal_states())
    state = np.ones(NUM_METRICS)
    state[METRIC_INDEX["transmit_counter"]] = -1000.0  # reboot evidence
    state[METRIC_INDEX["loop_counter"]] = 500.0
    assert diagnoser.diagnose(state).cause == "node_reboot"


def test_sympathy_detects_each_tree_cause():
    diagnoser = SympathyDiagnoser().fit(normal_states())
    cases = {
        "no_route": ("no_parent_counter", 100.0),
        "routing_loop": ("loop_counter", 100.0),
        "queue_overflow": ("overflow_drop_counter", 100.0),
        "link_disconnection": ("drop_packet_counter", 100.0),
        "bad_link": ("noack_retransmit_counter", 100.0),
        "contention": ("mac_backoff_counter", 1000.0),
        "parent_churn": ("parent_change_counter", 100.0),
        "low_battery": ("voltage", -10.0),
    }
    for expected, (metric, value) in cases.items():
        state = np.ones(NUM_METRICS)
        state[METRIC_INDEX[metric]] = value
        assert diagnoser.diagnose(state).cause == expected, expected


def test_sympathy_requires_fit():
    with pytest.raises(RuntimeError):
        SympathyDiagnoser().diagnose(np.zeros(NUM_METRICS))


def test_sympathy_batch(testbed_trace):
    from repro.core.states import build_states

    states = build_states(testbed_trace)
    diagnoser = SympathyDiagnoser().fit(states)
    verdicts = diagnoser.diagnose_batch(states.select(range(100)))
    assert len(verdicts) == 100


# ---------------------------------------------------------------------
# Agnostic Diagnosis
# ---------------------------------------------------------------------


def correlated_states(n=80, seed=0, node_id=1, break_after=None):
    """Metrics 0 and 1 strongly correlated; optionally broken later."""
    rng = np.random.default_rng(seed)
    values = rng.normal(0, 0.1, size=(n, NUM_METRICS))
    driver = rng.normal(0, 1, size=n)
    values[:, 0] = driver
    values[:, 1] = driver + rng.normal(0, 0.05, size=n)
    if break_after is not None:
        values[break_after:, 1] = rng.normal(0, 1, size=n - break_after)
    return make_states(values, node_ids=[node_id] * n)


def test_correlation_matrix_properties():
    states = correlated_states()
    corr = _correlation_matrix(states.values)
    assert corr.shape == (NUM_METRICS, NUM_METRICS)
    assert np.allclose(np.diag(corr), 1.0)
    assert corr[0, 1] > 0.9
    assert np.all(np.abs(corr) <= 1.0)


def test_agnostic_learns_reference_and_stays_quiet():
    diagnoser = AgnosticDiagnoser(window=20).fit(correlated_states())
    verdicts = diagnoser.diagnose_node(1, correlated_states(seed=1))
    assert verdicts
    abnormal = np.mean([v.is_abnormal for v in verdicts])
    assert abnormal < 0.5


def test_agnostic_flags_broken_correlation():
    diagnoser = AgnosticDiagnoser(window=20, anomaly_factor=1.5).fit(
        correlated_states()
    )
    broken = correlated_states(seed=2, break_after=0)
    verdicts = diagnoser.diagnose_node(1, broken)
    assert any(v.is_abnormal for v in verdicts)
    healthy_scores = [
        v.score for v in diagnoser.diagnose_node(1, correlated_states(seed=3))
    ]
    broken_scores = [v.score for v in verdicts]
    assert np.mean(broken_scores) > np.mean(healthy_scores)


def test_agnostic_requires_enough_data():
    with pytest.raises(ValueError):
        AgnosticDiagnoser(window=50).fit(correlated_states(n=10))


def test_agnostic_unknown_node_empty():
    diagnoser = AgnosticDiagnoser(window=20).fit(correlated_states())
    assert diagnoser.diagnose_node(99, correlated_states(node_id=99)) == []


def test_agnostic_requires_fit():
    with pytest.raises(RuntimeError):
        AgnosticDiagnoser().diagnose_node(1, correlated_states())


# ---------------------------------------------------------------------
# PCA
# ---------------------------------------------------------------------


def test_pca_scores_outliers_higher():
    detector = PCADetector(n_components=5).fit(normal_states())
    normal = detector.diagnose(np.ones(NUM_METRICS))
    outlier_state = np.ones(NUM_METRICS)
    outlier_state[METRIC_INDEX["loop_counter"]] = 500.0
    outlier = detector.diagnose(outlier_state)
    assert outlier.score > normal.score
    assert outlier.is_abnormal


def test_pca_false_positive_rate_calibrated():
    states = normal_states(n=200)
    detector = PCADetector(n_components=5, threshold_quantile=0.95).fit(states)
    verdicts = detector.diagnose_batch(states)
    fp = np.mean([v.is_abnormal for v in verdicts])
    assert fp == pytest.approx(0.05, abs=0.02)


def test_pca_requires_enough_states():
    with pytest.raises(ValueError):
        PCADetector(n_components=10).fit(normal_states(n=5))


def test_pca_requires_fit():
    with pytest.raises(RuntimeError):
        PCADetector().diagnose(np.zeros(NUM_METRICS))
