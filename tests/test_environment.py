"""Unit tests for the environment fields."""

import numpy as np
import pytest

from repro.simnet.environment import Environment, NoiseRegion


@pytest.fixture
def env():
    return Environment(rng=np.random.default_rng(0))


def test_temperature_diurnal_cycle(env):
    noon = env.temperature(43200.0, (0.0, 0.0))
    midnight = env.temperature(0.0, (0.0, 0.0))
    assert noon > midnight + 5.0


def test_light_zero_at_night(env):
    assert env.light(0.0, (0.0, 0.0)) <= 20.0
    assert env.light(43200.0, (0.0, 0.0)) > 800.0


def test_humidity_bounded(env):
    for t in np.linspace(0, 86400, 25):
        h = env.humidity(float(t), (50.0, 50.0))
        assert 5.0 <= h <= 100.0


def test_co2_traffic_bumps(env):
    morning = np.mean([env.co2(8 * 3600.0, (0.0, 0.0)) for _ in range(20)])
    night = np.mean([env.co2(2 * 3600.0, (0.0, 0.0)) for _ in range(20)])
    assert morning > night + 20.0


def test_scaled_day_compresses_cycle():
    env = Environment(rng=np.random.default_rng(0), day_seconds=7200.0)
    noon = env.temperature(3600.0, (0.0, 0.0))
    midnight = env.temperature(0.0, (0.0, 0.0))
    assert noon > midnight + 5.0


def test_noise_floor_base(env):
    assert env.noise_floor(0.0, (0.0, 0.0)) == pytest.approx(-96.0)


def test_noise_region_raises_floor_inside_only(env):
    env.add_noise_region(
        NoiseRegion(center=(0.0, 0.0), radius=10.0, start=5.0, end=10.0,
                    delta_db=15.0)
    )
    assert env.noise_floor(7.0, (1.0, 1.0)) == pytest.approx(-81.0)
    assert env.noise_floor(7.0, (50.0, 50.0)) == pytest.approx(-96.0)
    assert env.noise_floor(4.0, (1.0, 1.0)) == pytest.approx(-96.0)
    assert env.noise_floor(10.0, (1.0, 1.0)) == pytest.approx(-96.0)


def test_overlapping_noise_regions_stack(env):
    for _ in range(2):
        env.add_noise_region(
            NoiseRegion(center=(0.0, 0.0), radius=10.0, start=0.0, end=10.0,
                        delta_db=5.0)
        )
    assert env.noise_floor(1.0, (0.0, 0.0)) == pytest.approx(-86.0)


def test_prune_noise_regions(env):
    env.add_noise_region(
        NoiseRegion(center=(0.0, 0.0), radius=10.0, start=0.0, end=10.0,
                    delta_db=5.0)
    )
    env.prune_noise_regions(20.0)
    assert env.noise_regions == []
