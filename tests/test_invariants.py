"""System invariants under randomized fault scenarios (hypothesis).

Each example builds a small network, injects a random combination of
faults at random times, runs it, and asserts invariants that must hold
for *any* scenario — the failure-injection analogue of fuzzing.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.metrics.catalog import METRIC_INDEX
from repro.simnet.faults import (
    BatteryDrain,
    FaultInjector,
    ForcedLoop,
    Interference,
    LinkDegradation,
    NodeFailure,
    NodeReboot,
    TrafficBurst,
)
from repro.simnet.network import Network, NetworkConfig
from repro.simnet.radio import RadioParams
from repro.simnet.topology import grid_topology

SIM_END = 1500.0


def _fault_strategy():
    node = st.integers(1, 15)
    time = st.floats(200.0, 1100.0)

    failure = st.builds(NodeFailure, node_id=node, at=time)
    reboot = st.builds(NodeReboot, node_id=node, at=time)
    loop = st.builds(
        ForcedLoop,
        node_a=st.integers(1, 7),
        node_b=st.integers(8, 15),
        start=time,
        end=st.floats(1100.0, 1400.0),
    )
    interference = st.builds(
        Interference,
        center=st.tuples(st.floats(0.0, 30.0), st.floats(0.0, 30.0)),
        radius=st.floats(10.0, 30.0),
        start=time,
        end=st.floats(1100.0, 1400.0),
        delta_db=st.floats(6.0, 25.0),
    )
    degradation = st.builds(
        LinkDegradation,
        center=st.tuples(st.floats(0.0, 30.0), st.floats(0.0, 30.0)),
        radius=st.floats(10.0, 30.0),
        start=time,
        end=st.floats(1100.0, 1400.0),
        extra_db=st.floats(5.0, 20.0),
    )
    burst = st.builds(
        TrafficBurst,
        node_ids=st.tuples(node, node),
        start=time,
        end=st.floats(1100.0, 1400.0),
        interval_s=st.floats(0.5, 5.0),
    )
    drain = st.builds(
        BatteryDrain,
        node_id=node,
        start=time,
        end=st.floats(1100.0, 1400.0),
        multiplier=st.floats(10.0, 5000.0),
    )
    return st.lists(
        st.one_of(failure, reboot, loop, interference, degradation, burst,
                  drain),
        min_size=0,
        max_size=3,
    )


@given(faults=_fault_strategy(), seed=st.integers(0, 50))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_network_invariants_under_random_faults(faults, seed):
    topology = grid_topology(rows=4, cols=4, spacing=9.0)
    network = Network(topology, NetworkConfig(
        report_period_s=120.0,
        beacon_min_s=10.0,
        beacon_max_s=120.0,
        seed=seed,
        radio=RadioParams(tx_power_dbm=-10.0),
        max_range_m=40.0,
    ))
    FaultInjector(faults).install(network)
    network.run(SIM_END)

    # -- conservation: the sink never receives more than was generated
    assert network.collector.packets_received <= network.stats.packets_generated

    # -- per-node sanity
    for node in network.nodes.values():
        counters = node.counters.as_dict()
        for name, value in counters.items():
            assert value >= 0, (node.node_id, name, value)
        # queue never exceeds capacity
        assert len(node.forwarding.queue) <= node.forwarding.queue.capacity
        # a node cannot have NOACK retransmits without transmissions
        if counters["noack_retransmit_counter"] > 0:
            assert counters["transmit_counter"] > 0
        # energy accounting never goes negative
        assert node.hardware.battery.used_j >= 0
        assert node.hardware.radio_on_time >= 0
        # snapshots are well-formed at any time
        vec = node.build_snapshot(network.sim.now())
        assert np.all(np.isfinite(vec))

    # -- collector consistency: every complete snapshot has 43 metrics and
    #    timeline epochs strictly increase
    for timeline in network.collector.timelines.values():
        epochs = [s.epoch for s in timeline.snapshots]
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == len(epochs)

    # -- dead nodes stay quiet
    for node in network.nodes.values():
        if not node.alive:
            tx_before = node.counters.transmit_counter
            network.sim.run(60.0)
            assert node.counters.transmit_counter == tx_before


def test_loop_fault_on_same_node_is_harmless():
    """A degenerate forced loop (a == b) must not crash the simulator."""
    topology = grid_topology(rows=3, cols=3, spacing=9.0)
    network = Network(topology, NetworkConfig(
        report_period_s=60.0, seed=0, radio=RadioParams(tx_power_dbm=-10.0),
        max_range_m=40.0,
    ))
    FaultInjector([ForcedLoop(4, 4, start=100.0, end=400.0)]).install(network)
    network.run(600.0)
    assert network.collector.packets_received > 0


def test_fault_on_sink_is_tolerated():
    """Killing the sink stops collection but must not crash."""
    topology = grid_topology(rows=3, cols=3, spacing=9.0)
    network = Network(topology, NetworkConfig(
        report_period_s=60.0, seed=0, radio=RadioParams(tx_power_dbm=-10.0),
        max_range_m=40.0,
    ))
    FaultInjector([NodeFailure(0, at=300.0)]).install(network)
    network.run(900.0)
    received_at_death = network.collector.packets_received
    network.run(300.0)
    assert network.collector.packets_received == received_at_death