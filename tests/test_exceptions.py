"""Tests for exception detection (the paper's ε rule)."""

import numpy as np
import pytest

from repro.core.exceptions import detect_exceptions, deviation_scores
from repro.core.states import StateMatrix, StateProvenance
from repro.metrics.catalog import NUM_METRICS


def make_states(values):
    values = np.asarray(values, dtype=float)
    provenance = [
        StateProvenance(node_id=1, epoch_from=i, epoch_to=i + 1,
                        time_from=float(i), time_to=float(i + 1))
        for i in range(values.shape[0])
    ]
    return StateMatrix(values=values, provenance=provenance)


def embed(rows):
    """Place small row vectors into full 43-wide states."""
    out = np.zeros((len(rows), NUM_METRICS))
    for i, row in enumerate(rows):
        out[i, : len(row)] = row
    return out


def test_outlier_flagged():
    base = [[1.0, 1.0]] * 50
    states = make_states(embed(base + [[100.0, 1.0]]))
    result = detect_exceptions(states, threshold_ratio=0.1)
    assert 50 in result.indices


def test_normal_states_not_flagged():
    rng = np.random.default_rng(0)
    values = embed(rng.normal(1.0, 0.01, size=(100, 3)).tolist())
    values[7, 0] = 50.0  # one clear outlier
    states = make_states(values)
    result = detect_exceptions(states, threshold_ratio=0.1)
    assert result.exception_fraction < 0.2
    assert 7 in result.indices


def test_epsilon_computed_for_every_state():
    states = make_states(embed([[1.0], [2.0], [3.0]]))
    result = detect_exceptions(states)
    assert len(result.epsilon) == 3


def test_deviation_uses_per_metric_scale():
    # metric 0 varies by thousands, metric 1 by hundredths; an outlier in
    # metric 1 must still be detected
    rng = np.random.default_rng(1)
    values = embed(
        np.column_stack(
            [rng.normal(0, 1000.0, 60), rng.normal(0, 0.01, 60)]
        ).tolist()
    )
    values[10, 1] = 1.0  # 100 sigma in metric 1
    scores = deviation_scores(values)
    assert scores[10] > np.median(scores) * 10


def test_min_exceptions_fallback():
    states = make_states(embed([[1.0], [1.0], [1.0], [1.0]]))
    result = detect_exceptions(states, min_exceptions=2)
    assert len(result) == 2


def test_threshold_ratio_effect():
    rng = np.random.default_rng(2)
    values = embed(rng.normal(0, 1, size=(200, 4)).tolist())
    values[0] *= 50
    states = make_states(values)
    strict = detect_exceptions(states, threshold_ratio=0.5)
    loose = detect_exceptions(states, threshold_ratio=0.001)
    assert len(strict) <= len(loose)


def test_empty_states():
    states = make_states(np.zeros((0, NUM_METRICS)))
    result = detect_exceptions(states)
    assert len(result) == 0
    assert result.exception_fraction == 0.0


def test_exception_set_preserves_provenance():
    base = [[1.0, 1.0]] * 20
    states = make_states(embed(base + [[50.0, 1.0]]))
    result = detect_exceptions(states, threshold_ratio=0.5)
    flagged_epochs = [p.epoch_from for p in result.states.provenance]
    assert 20 in flagged_epochs
