"""Unit tests for the packet queue and the counter set."""

import pytest

from repro.simnet.counters import CounterSet
from repro.simnet.queuebuf import PacketQueue


def test_fifo_order():
    q = PacketQueue(capacity=3)
    for x in (1, 2, 3):
        assert q.push(x)
    assert q.pop() == 1
    assert q.pop() == 2


def test_overflow_rejected_and_counted():
    q = PacketQueue(capacity=2)
    assert q.push("a") and q.push("b")
    assert not q.push("c")
    assert q.total_rejected == 1
    assert q.total_enqueued == 2
    assert len(q) == 2


def test_peek_does_not_remove():
    q = PacketQueue(capacity=2)
    q.push("x")
    assert q.peek() == "x"
    assert len(q) == 1


def test_peek_empty_returns_none():
    assert PacketQueue().peek() is None


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        PacketQueue().pop()


def test_requeue_head():
    q = PacketQueue(capacity=3)
    q.push("a")
    q.push("b")
    head = q.pop()
    q.requeue_head(head)
    assert q.peek() == "a"


def test_clear():
    q = PacketQueue(capacity=3)
    q.push(1)
    q.clear()
    assert len(q) == 0
    assert not q


def test_is_full():
    q = PacketQueue(capacity=1)
    assert not q.is_full()
    q.push(1)
    assert q.is_full()


def test_capacity_validation():
    with pytest.raises(ValueError):
        PacketQueue(capacity=0)


def test_counters_start_zero():
    c = CounterSet()
    assert all(v == 0.0 for v in c.as_dict().values())


def test_counters_cover_all_c3_metrics_except_radio_time():
    from repro.metrics.catalog import PacketClass, metrics_in_packet

    c3_names = {m.name for m in metrics_in_packet(PacketClass.C3)}
    counter_names = set(CounterSet().as_dict())
    assert counter_names == c3_names - {"radio_on_time"}


def test_counter_reset():
    c = CounterSet()
    c.transmit_counter += 5
    c.loop_counter += 2
    c.reset()
    assert c.transmit_counter == 0.0
    assert c.loop_counter == 0.0
