"""Tests for the normalizer, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp


from repro.core.normalization import MinMaxNormalizer


def matrices(min_rows=2, max_rows=12, cols=5):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_rows, max_rows), st.just(cols)
        ),
        elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False,
                           width=64),
    )


@given(matrices())
@settings(max_examples=50, deadline=None)
def test_transform_always_in_unit_interval(matrix):
    normalizer = MinMaxNormalizer.fit(matrix)
    scaled = normalizer.transform(matrix)
    assert np.all(scaled >= 0.0)
    assert np.all(scaled <= 1.0)


@given(matrices())
@settings(max_examples=50, deadline=None)
def test_minmax_inverse_roundtrip(matrix):
    normalizer = MinMaxNormalizer.fit(matrix, method="minmax")
    scaled = normalizer.transform(matrix, clip=False)
    restored = normalizer.inverse(scaled)
    span = np.abs(matrix).max() + 1.0
    assert np.allclose(restored, matrix, atol=1e-6 * span)


@given(matrices())
@settings(max_examples=30, deadline=None)
def test_display_bounded(matrix):
    normalizer = MinMaxNormalizer.fit(matrix)
    psi = np.random.default_rng(0).uniform(0, 1, size=(4, matrix.shape[1]))
    display = normalizer.display(psi)
    assert np.all(np.abs(display) <= 1.0 + 1e-9)


def test_rest_point_is_zero_delta_image():
    matrix = np.array([[-10.0, 0.0], [10.0, 4.0], [0.0, 2.0]])
    normalizer = MinMaxNormalizer.fit(matrix, method="minmax")
    rest = normalizer.rest_point()
    assert rest[0] == pytest.approx(0.5)
    assert rest[1] == pytest.approx(0.0)


def test_robust_scaling_preserves_moderate_signal():
    # 99 small deltas and one huge reset: under min-max the small signal
    # becomes invisible; under robust scaling it stays meaningful.
    rng = np.random.default_rng(0)
    column = rng.normal(0.0, 1.0, size=200)
    column[0] = -100000.0  # reboot reset
    column[1] = 50.0  # loop inflation
    matrix = column[:, None]

    naive = MinMaxNormalizer.fit(matrix, method="minmax")
    robust = MinMaxNormalizer.fit(matrix, method="robust")

    naive_sep = naive.transform(np.array([[50.0]]))[0, 0] - naive.transform(
        np.array([[0.0]])
    )[0, 0]
    robust_sep = robust.transform(np.array([[50.0]]))[0, 0] - robust.transform(
        np.array([[0.0]])
    )[0, 0]
    assert robust_sep > 10 * naive_sep


def test_robust_clips_outliers_to_edges():
    matrix = np.concatenate([np.zeros(50), [1e6, -1e6]])[:, None]
    normalizer = MinMaxNormalizer.fit(matrix)
    scaled = normalizer.transform(np.array([[1e6], [-1e6], [0.0]]))
    assert scaled[0, 0] == pytest.approx(1.0)
    assert scaled[1, 0] == pytest.approx(0.0)
    assert 0.4 < scaled[2, 0] < 0.6


def test_constant_column_does_not_blow_up():
    matrix = np.ones((10, 3))
    normalizer = MinMaxNormalizer.fit(matrix)
    scaled = normalizer.transform(matrix)
    assert np.all(np.isfinite(scaled))


def test_fit_rejects_empty():
    with pytest.raises(ValueError):
        MinMaxNormalizer.fit(np.zeros((0, 3)))


def test_fit_rejects_unknown_method():
    with pytest.raises(ValueError):
        MinMaxNormalizer.fit(np.ones((2, 2)), method="zscore")


def test_pad_fraction_widens_range():
    matrix = np.array([[0.0], [10.0]])
    padded = MinMaxNormalizer.fit(matrix, pad_fraction=0.1, method="minmax")
    scaled = padded.transform(np.array([[0.0], [10.0]]), clip=False)
    assert scaled[0, 0] > 0.0
    assert scaled[1, 0] < 1.0
