"""Property-based round-trip tests of the TraceFrame codecs.

Hypothesis generates arbitrary frames — including empty ones, empty
arrival logs, duplicate (node, epoch) keys and extreme float magnitudes —
and checks the codec contracts stated in :mod:`repro.traces.io`:

* **NPZ** is bit-exact: every column, the metadata, the ground truth and
  the packet counters survive unchanged.
* **JSONL** is exact on the integer/time columns and 6-decimal on the
  metric matrix (the documented precision of the diff-able codec): the
  loaded values equal ``np.round(values, 6)`` bit-for-bit.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.metrics.catalog import NUM_METRICS
from repro.traces.frame import TraceFrame
from repro.traces.io import (
    load_frame_jsonl,
    load_frame_npz,
    save_frame_jsonl,
    save_frame_npz,
)
from repro.traces.records import GroundTruth

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)

# Metric values stay below the magnitude where np.round's scale-by-1e6
# intermediate would overflow to inf (and spam RuntimeWarnings); real
# metrics are counts, rates and millivolts, far inside this range.
metric_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, width=64
)

ground_truths = st.builds(
    GroundTruth,
    kind=st.sampled_from(["routing_loop", "interference", "node_failure"]),
    node_ids=st.tuples(st.integers(0, 50)),
    start=finite_floats,
    end=finite_floats,
)

metadata_dicts = st.dictionaries(
    keys=st.text(min_size=1, max_size=8),
    values=st.one_of(
        st.integers(-(10 ** 9), 10 ** 9), finite_floats,
        st.text(max_size=12), st.booleans(),
    ),
    max_size=4,
)


@st.composite
def trace_frames(draw) -> TraceFrame:
    n = draw(st.integers(min_value=0, max_value=6))
    k = draw(st.integers(min_value=0, max_value=4))
    row = st.lists(metric_floats, min_size=NUM_METRICS, max_size=NUM_METRICS)
    values = draw(st.lists(row, min_size=n, max_size=n))
    ints = st.lists(st.integers(0, 1000), min_size=n, max_size=n)
    times = st.lists(finite_floats, min_size=n, max_size=n)
    return TraceFrame(
        node_ids=np.asarray(draw(ints), dtype=np.int64),
        epochs=np.asarray(draw(ints), dtype=np.int64),
        generated_at=np.asarray(draw(times), dtype=float),
        received_at=np.asarray(draw(times), dtype=float),
        values=(
            np.asarray(values, dtype=float)
            if n else np.zeros((0, NUM_METRICS))
        ),
        metadata=draw(metadata_dicts),
        ground_truth=draw(st.lists(ground_truths, max_size=2)),
        packets_generated=draw(st.integers(0, 10 ** 6)),
        packets_received=draw(st.integers(0, 10 ** 6)),
        arrival_times=np.asarray(
            draw(st.lists(finite_floats, min_size=k, max_size=k)), dtype=float
        ),
        arrival_nodes=np.asarray(
            draw(st.lists(st.integers(0, 1000), min_size=k, max_size=k)),
            dtype=np.int64,
        ),
    )


codec_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _roundtrip(frame: TraceFrame, save, load) -> TraceFrame:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "frame.trace")
        save(frame, path)
        return load(path)


@codec_settings
@given(frame=trace_frames())
def test_npz_roundtrip_is_bit_exact(frame):
    loaded = _roundtrip(frame, save_frame_npz, load_frame_npz)
    for column in (
        "node_ids", "epochs", "generated_at", "received_at",
        "values", "arrival_times", "arrival_nodes",
    ):
        assert np.array_equal(getattr(frame, column), getattr(loaded, column))
    assert loaded.metadata == frame.metadata
    assert loaded.ground_truth == frame.ground_truth
    assert loaded.packets_generated == frame.packets_generated
    assert loaded.packets_received == frame.packets_received
    assert loaded.values.shape == (len(frame), NUM_METRICS)


@codec_settings
@given(frame=trace_frames())
def test_jsonl_roundtrip_is_exact_at_6_decimals(frame):
    loaded = _roundtrip(frame, save_frame_jsonl, load_frame_jsonl)
    # Integer and time columns are lossless; the metric matrix is written
    # at 6-decimal precision, and JSON preserves each rounded double
    # exactly (repr round-trip), so equality against np.round is exact.
    for column in (
        "node_ids", "epochs", "generated_at", "received_at",
        "arrival_times", "arrival_nodes",
    ):
        assert np.array_equal(getattr(frame, column), getattr(loaded, column))
    assert np.array_equal(loaded.values, np.round(frame.values, 6))
    assert loaded.metadata == frame.metadata
    assert loaded.ground_truth == frame.ground_truth
    assert loaded.values.shape == (len(frame), NUM_METRICS)


def test_empty_frame_roundtrips_both_codecs():
    """The n=0, no-arrivals corner deserves a named, always-run case."""
    empty = TraceFrame(
        node_ids=np.zeros(0, dtype=np.int64),
        epochs=np.zeros(0, dtype=np.int64),
        generated_at=np.zeros(0),
        received_at=np.zeros(0),
        values=np.zeros((0, NUM_METRICS)),
    )
    for save, load in (
        (save_frame_npz, load_frame_npz),
        (save_frame_jsonl, load_frame_jsonl),
    ):
        loaded = _roundtrip(empty, save, load)
        assert len(loaded) == 0
        assert loaded.values.shape == (0, NUM_METRICS)
        assert loaded.arrival_times.size == 0
