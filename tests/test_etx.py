"""Unit tests for the link estimator."""

import pytest

from repro.simnet.ctp.etx import MAX_ETX, LinkEstimator, NeighborEntry


@pytest.fixture
def estimator():
    return LinkEstimator(table_size=3, entry_timeout_s=100.0)


def test_beacon_inserts_entry(estimator):
    estimator.on_beacon(5, rssi=-70.0, advertised_path_etx=2.0, now=1.0)
    assert estimator.entry(5) is not None
    assert estimator.consume_new_neighbor_flag()
    assert not estimator.consume_new_neighbor_flag()  # flag clears


def test_rssi_ewma_converges(estimator):
    for _ in range(40):
        estimator.on_beacon(5, rssi=-60.0, advertised_path_etx=2.0, now=1.0)
    assert estimator.entry(5).rssi_ewma == pytest.approx(-60.0, abs=1.0)


def test_beacon_quality_drives_etx(estimator):
    for _ in range(60):
        estimator.on_beacon(5, rssi=-60.0, advertised_path_etx=2.0, now=1.0)
    # perfect beacon reception -> quality ~1 -> link ETX ~1
    assert estimator.entry(5).link_etx() == pytest.approx(1.0, abs=0.3)


def test_data_estimate_dominates(estimator):
    for _ in range(10):
        estimator.on_beacon(5, rssi=-60.0, advertised_path_etx=2.0, now=1.0)
    # 8 attempts, 2 ACKs -> data ETX = 4
    for i in range(8):
        estimator.on_data_attempt(5, acked=(i % 4 == 0))
    assert estimator.entry(5).link_etx() == pytest.approx(4.0, rel=0.1)


def test_unknown_neighbor_has_max_etx():
    entry = NeighborEntry(neighbor_id=1)
    assert entry.link_etx() == MAX_ETX


def test_data_window_halving(estimator):
    estimator.data_window = 8
    estimator.on_beacon(5, rssi=-60.0, advertised_path_etx=2.0, now=1.0)
    for _ in range(8):
        estimator.on_data_attempt(5, acked=True)
    entry = estimator.entry(5)
    assert entry.data_attempts == 4
    assert entry.data_acks == 4


def test_eviction_prefers_dropping_worst(estimator):
    estimator.on_beacon(1, rssi=-60.0, advertised_path_etx=1.0, now=1.0)
    estimator.on_beacon(2, rssi=-65.0, advertised_path_etx=1.0, now=1.0)
    estimator.on_beacon(3, rssi=-70.0, advertised_path_etx=1.0, now=1.0)
    # table full; a strong newcomer evicts the weakest entry
    estimator.on_beacon(4, rssi=-50.0, advertised_path_etx=1.0, now=1.0)
    assert len(estimator.entries) == 3
    assert 4 in estimator.entries


def test_weak_newcomer_rejected_when_full(estimator):
    for nid, rssi in ((1, -55.0), (2, -60.0), (3, -65.0)):
        for _ in range(20):
            estimator.on_beacon(nid, rssi=rssi, advertised_path_etx=1.0, now=1.0)
    estimator.on_beacon(9, rssi=-90.0, advertised_path_etx=1.0, now=1.0)
    assert 9 not in estimator.entries


def test_age_out(estimator):
    estimator.on_beacon(5, rssi=-60.0, advertised_path_etx=2.0, now=0.0)
    estimator.on_beacon(6, rssi=-60.0, advertised_path_etx=2.0, now=90.0)
    removed = estimator.age_out(now=150.0)
    assert removed == [5]
    assert 6 in estimator.entries


def test_quality_decays_when_silent(estimator):
    for _ in range(60):
        estimator.on_beacon(5, rssi=-60.0, advertised_path_etx=2.0, now=1.0)
    q0 = estimator.entry(5).beacon_quality
    for _ in range(10):
        estimator.on_beacon_period(now=50.0)
    assert estimator.entry(5).beacon_quality < q0 * 0.5


def test_sorted_entries_best_first(estimator):
    for _ in range(40):
        estimator.on_beacon(1, rssi=-60.0, advertised_path_etx=1.0, now=1.0)
    estimator.on_beacon(2, rssi=-85.0, advertised_path_etx=1.0, now=1.0)
    best = estimator.sorted_entries()[0]
    assert best.neighbor_id == 1


def test_clear(estimator):
    estimator.on_beacon(5, rssi=-60.0, advertised_path_etx=2.0, now=1.0)
    estimator.clear()
    assert estimator.entries == {}
